//! E6 — Table V: ISLA at one *third* of the required sampling rate
//! versus US and STS at the full rate (e = 0.5, five datasets).
//!
//! The paper's headline claim: "our approach achieves high-quality
//! answers with only 1/3 sample size".

use isla_baselines::{Estimator, StratifiedSampling, UniformSampling};
use isla_bench::{fmt, mean_abs_error, paper, Report};
use isla_core::{IslaAggregator, IslaConfig};
use isla_datagen::synthetic::virtual_normal_dataset;
use isla_stats::required_sample_size;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E6 (Table V): ISLA @ r/3 vs US, STS @ r; e=0.5, N(100,20²)");
    let e = 0.5;
    let config = IslaConfig::builder().precision(e).build().unwrap();
    let aggregator = IslaAggregator::new(config).unwrap();
    let budget = required_sample_size(20.0, e, 0.95);
    println!("full-rate budget m = {budget}; ISLA draws m/3 in its calculation phase");

    let mut report = Report::new(
        "exp_table5_us_sts",
        &[
            "dataset",
            "ISLA (r/3)",
            "US (r)",
            "STS (r)",
            "paper ISLA",
            "paper US",
            "paper STS",
        ],
    );
    let (mut isla_all, mut us_all, mut sts_all) = (Vec::new(), Vec::new(), Vec::new());
    for i in 0..5usize {
        let ds = virtual_normal_dataset(100.0, 20.0, 10_000_000, 10, 1100 + i as u64);
        let mut rng = StdRng::seed_from_u64(5000 + i as u64);
        let isla = aggregator
            .aggregate_with_rate_factor(&ds.blocks, 1.0 / 3.0, &mut rng)
            .unwrap()
            .estimate;
        let mut rng = StdRng::seed_from_u64(5000 + i as u64);
        let us = UniformSampling
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5000 + i as u64);
        let sts = StratifiedSampling::proportional()
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap();
        isla_all.push(isla);
        us_all.push(us);
        sts_all.push(sts);
        report.row(vec![
            (i + 1).to_string(),
            fmt(isla, 4),
            fmt(us, 4),
            fmt(sts, 4),
            fmt(paper::TABLE5_ISLA[i], 4),
            fmt(paper::TABLE5_US[i], 4),
            fmt(paper::TABLE5_STS[i], 4),
        ]);
    }
    report.finish();

    let isla_err = mean_abs_error(&isla_all, 100.0);
    let us_err = mean_abs_error(&us_all, 100.0);
    let sts_err = mean_abs_error(&sts_all, 100.0);
    println!("mean |err|: ISLA(r/3) {isla_err:.4}  US(r) {us_err:.4}  STS(r) {sts_err:.4}");
    // Shape: ISLA at a third of the sample size stays in the same error
    // class as the full-rate competitors (within the precision target).
    assert!(
        isla_err <= e,
        "ISLA at r/3 should still satisfy the precision on average, got {isla_err:.4}"
    );
    println!("shape check: ISLA at 1/3 sample size meets the precision target (Table V).");
}
