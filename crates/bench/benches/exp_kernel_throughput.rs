//! M4 — kernel throughput: scalar vs batched sampling & scan kernels.
//!
//! Not a paper experiment: this bench tracks the storage kernel layer.
//! Every hot path is measured twice over the *same data* — once through
//! the batched kernels (`sample_batch` sorted gather, `scan_chunks`
//! contiguous slices, selection-vector filtered draws) and once through
//! the scalar path they replaced (forced via `ScalarFallbackBlock` /
//! rejection-sampling views) — so each row reports an honest same-run
//! speedup. Four sweeps:
//!
//! 1. **sample_kernel** — uniform value draws across block sizes;
//! 2. **scan_kernel** — full scans across block sizes;
//! 3. **filtered_sampling** — filtered draws across selectivities:
//!    compiled selection vectors vs per-draw rejection sampling;
//! 4. **estimators** — end-to-end wall time for ISLA and all baselines
//!    on batched vs scalar kernels, asserting the answers are
//!    bit-identical (the kernels may never change an estimate).
//!
//! Results print as a table (CSV under `target/experiments/`) and are
//! written machine-readable to `BENCH_kernels.json` at the workspace
//! root. `--smoke` runs a seconds-scale configuration and validates the
//! emitted JSON schema (the CI hook), skipping the speedup assertions
//! that only make sense at full scale.

use std::sync::Arc;
use std::time::Instant;

use isla_baselines::{
    Estimator, MeasureBiasedBoundaries, MeasureBiasedValues, Slev, StratifiedSampling,
    UniformSampling,
};
use isla_bench::json::{get, parse, Json};
use isla_bench::{bench_json_path, fmt, Report};
use isla_core::engine::{self, RateSpec, SequentialScheduler};
use isla_core::IslaConfig;
use isla_datagen::normal_values;
use isla_storage::{
    pool_filtered_column, sample_from_block, scalar_fallback_set, BlockSet, CmpOp, ColumnPredicate,
    DataBlock, FilteredColumnView, MemBlock, RowFilter, RowsBlock, ScalarFallbackBlock,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 4_000;

/// One sweep's scale knobs (full vs `--smoke`).
struct Scale {
    mode: &'static str,
    block_rows: Vec<usize>,
    sample_draws: u64,
    filter_rows: usize,
    filter_draws: u64,
    estimator_rows: usize,
    estimator_budget: u64,
    runs: usize,
}

impl Scale {
    fn full() -> Self {
        Self {
            mode: "full",
            block_rows: vec![65_536, 1_048_576],
            sample_draws: 2_000_000,
            filter_rows: 1_048_576,
            filter_draws: 200_000,
            estimator_rows: 1_000_000,
            estimator_budget: 200_000,
            runs: 5,
        }
    }

    fn smoke() -> Self {
        Self {
            mode: "smoke",
            block_rows: vec![8_192],
            sample_draws: 20_000,
            filter_rows: 16_384,
            filter_draws: 4_000,
            estimator_rows: 20_000,
            estimator_budget: 4_000,
            runs: 2,
        }
    }
}

/// Median wall seconds of `runs` executions of `f` (which returns a
/// checksum kept alive so the work cannot be optimized away).
fn median_secs(runs: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut times = Vec::with_capacity(runs);
    let mut checksum = 0.0;
    for _ in 0..runs {
        let start = Instant::now();
        checksum = f();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], checksum)
}

/// Sweep 1: uniform value draws, batched sorted gather vs scalar loop.
fn sweep_sample_kernel(scale: &Scale, report: &mut Report) -> Vec<Json> {
    let mut rows = Vec::new();
    for &block_rows in &scale.block_rows {
        let native: Arc<dyn DataBlock> =
            Arc::new(MemBlock::new(normal_values(100.0, 20.0, block_rows, SEED)));
        let scalar_block = ScalarFallbackBlock(Arc::clone(&native));
        let draws = scale.sample_draws;
        let time_draws = |block: &dyn DataBlock| {
            median_secs(scale.runs, || {
                let mut rng = StdRng::seed_from_u64(SEED + 1);
                let mut sum = 0.0;
                sample_from_block(block, draws, &mut rng, &mut |v| sum += v)
                    .expect("sampling succeeds");
                sum
            })
        };
        let (scalar_s, scalar_sum) = time_draws(&scalar_block);
        let (batched_s, batched_sum) = time_draws(native.as_ref());
        assert_eq!(
            scalar_sum.to_bits(),
            batched_sum.to_bits(),
            "batched draws must be bit-identical to scalar draws"
        );
        let scalar_rate = draws as f64 / scalar_s;
        let batched_rate = draws as f64 / batched_s;
        report.row(vec![
            "sample".to_string(),
            block_rows.to_string(),
            "-".to_string(),
            fmt(scalar_rate / 1e6, 2),
            fmt(batched_rate / 1e6, 2),
            fmt(batched_rate / scalar_rate, 2),
        ]);
        rows.push(Json::obj(vec![
            ("block_rows", Json::num(block_rows as f64)),
            ("draws", Json::num(draws as f64)),
            ("scalar_samples_per_s", Json::num(scalar_rate)),
            ("batched_samples_per_s", Json::num(batched_rate)),
            ("speedup", Json::num(batched_rate / scalar_rate)),
        ]));
    }
    rows
}

/// Sweep 2: full scans, chunked slices vs per-value dispatch.
fn sweep_scan_kernel(scale: &Scale, report: &mut Report) -> Vec<Json> {
    let mut rows = Vec::new();
    for &block_rows in &scale.block_rows {
        let native: Arc<dyn DataBlock> = Arc::new(MemBlock::new(normal_values(
            50.0,
            10.0,
            block_rows,
            SEED ^ 1,
        )));
        let (scalar_s, scalar_sum) = median_secs(scale.runs, || {
            let mut sum = 0.0;
            native.scan(&mut |v| sum += v).expect("scan succeeds");
            sum
        });
        let (chunked_s, chunked_sum) = median_secs(scale.runs, || {
            let mut sum = 0.0;
            native
                .scan_chunks(&mut |chunk| {
                    for &v in chunk {
                        sum += v;
                    }
                })
                .expect("scan succeeds");
            sum
        });
        assert_eq!(
            scalar_sum.to_bits(),
            chunked_sum.to_bits(),
            "chunked scans must fold the identical value order"
        );
        let scalar_rate = block_rows as f64 / scalar_s;
        let chunked_rate = block_rows as f64 / chunked_s;
        report.row(vec![
            "scan".to_string(),
            block_rows.to_string(),
            "-".to_string(),
            fmt(scalar_rate / 1e6, 2),
            fmt(chunked_rate / 1e6, 2),
            fmt(chunked_rate / scalar_rate, 2),
        ]);
        rows.push(Json::obj(vec![
            ("block_rows", Json::num(block_rows as f64)),
            ("scalar_rows_per_s", Json::num(scalar_rate)),
            ("batched_rows_per_s", Json::num(chunked_rate)),
            ("speedup", Json::num(chunked_rate / scalar_rate)),
        ]));
    }
    rows
}

/// Sweep 3: filtered draws — compiled selection vectors vs rejection
/// sampling — across selectivities. Returns the JSON rows plus the
/// speedup measured at the lowest selectivity (the acceptance metric).
fn sweep_filtered(scale: &Scale, report: &mut Report) -> (Vec<Json>, f64) {
    let n = scale.filter_rows;
    let value = normal_values(100.0, 20.0, n, SEED ^ 2);
    // Auxiliary predicate column: uniform in [0, 1), so `aux < s`
    // selects an s-fraction of the rows.
    let aux: Vec<f64> = {
        let mut rng = StdRng::seed_from_u64(SEED ^ 3);
        use rand::Rng;
        (0..n).map(|_| rng.random_range(0.0..1.0)).collect()
    };
    let set = RowsBlock::split(vec![value, aux], 8);
    let mut rows = Vec::new();
    let mut low_sel_speedup = 0.0;
    for &selectivity in &[0.5, 0.1, 0.01] {
        let filter = RowFilter::new(vec![ColumnPredicate {
            column: 1,
            op: CmpOp::Lt,
            value: selectivity,
        }]);

        // Rejection baseline: views constructed directly (no compiled
        // selection), pooled over a single block so no block can run
        // out of matches.
        let inner: Vec<Arc<dyn DataBlock>> = set.iter().map(Arc::clone).collect();
        let rejection: Vec<Arc<dyn DataBlock>> = inner
            .iter()
            .map(|b| {
                Arc::new(FilteredColumnView::new(
                    Arc::clone(b),
                    0,
                    Arc::new(filter.clone()),
                )) as Arc<dyn DataBlock>
            })
            .collect();

        // Compiled path: the helper builds (and caches) the selection.
        let build_start = Instant::now();
        let compiled = pool_filtered_column(&set, 0, filter.clone());
        let build_s = build_start.elapsed().as_secs_f64();

        let draws = scale.filter_draws;
        let per_view = draws / rejection.len() as u64;
        let (scalar_s, _) = median_secs(scale.runs, || {
            let mut rng = StdRng::seed_from_u64(SEED + 9);
            let mut sum = 0.0;
            for view in &rejection {
                sample_from_block(view.as_ref(), per_view, &mut rng, &mut |v| sum += v)
                    .expect("rejection sampling succeeds");
            }
            sum
        });
        let (compiled_s, _) = median_secs(scale.runs, || {
            let mut rng = StdRng::seed_from_u64(SEED + 9);
            let mut sum = 0.0;
            sample_from_block(compiled.block(0).as_ref(), draws, &mut rng, &mut |v| {
                sum += v
            })
            .expect("selection sampling succeeds");
            sum
        });
        let used = per_view * rejection.len() as u64;
        let scalar_rate = used as f64 / scalar_s;
        let compiled_rate = draws as f64 / compiled_s;
        let speedup = compiled_rate / scalar_rate;
        low_sel_speedup = speedup; // last iteration = lowest selectivity
        report.row(vec![
            "filtered".to_string(),
            n.to_string(),
            fmt(selectivity, 2),
            fmt(scalar_rate / 1e6, 2),
            fmt(compiled_rate / 1e6, 2),
            fmt(speedup, 2),
        ]);
        rows.push(Json::obj(vec![
            ("rows", Json::num(n as f64)),
            ("selectivity", Json::num(selectivity)),
            ("draws", Json::num(draws as f64)),
            ("selection_build_s", Json::num(build_s)),
            ("scalar_samples_per_s", Json::num(scalar_rate)),
            ("batched_samples_per_s", Json::num(compiled_rate)),
            ("speedup", Json::num(speedup)),
        ]));
    }
    (rows, low_sel_speedup)
}

/// Sweep 4: end-to-end estimators on batched vs scalar kernels —
/// answers must agree bit for bit; only the wall time may move.
fn sweep_estimators(scale: &Scale, report: &mut Report) -> Vec<Json> {
    let native = BlockSet::from_values(
        normal_values(100.0, 20.0, scale.estimator_rows, SEED ^ 4),
        16,
    );
    let fallback = scalar_fallback_set(&native);
    let mut rows = Vec::new();

    // ISLA runs the whole pipeline; its budget is set by the precision.
    let cfg = IslaConfig::builder().precision(0.1).build().unwrap();
    let isla_run = |data: &BlockSet| {
        median_secs(scale.runs, || {
            let mut rng = StdRng::seed_from_u64(SEED + 20);
            engine::run(
                data,
                &cfg,
                RateSpec::Derived,
                &SequentialScheduler,
                &mut rng,
            )
            .expect("engine run succeeds")
            .estimate
        })
    };
    let (scalar_s, scalar_est) = isla_run(&fallback);
    let (batched_s, batched_est) = isla_run(&native);
    assert_eq!(
        scalar_est.to_bits(),
        batched_est.to_bits(),
        "ISLA answer moved"
    );
    report.row(vec![
        "estimator/ISLA".to_string(),
        scale.estimator_rows.to_string(),
        "-".to_string(),
        fmt(scalar_s * 1e3, 2),
        fmt(batched_s * 1e3, 2),
        fmt(scalar_s / batched_s, 2),
    ]);
    rows.push(Json::obj(vec![
        ("name", Json::str("ISLA")),
        ("scalar_ms", Json::num(scalar_s * 1e3)),
        ("batched_ms", Json::num(batched_s * 1e3)),
        ("speedup", Json::num(scalar_s / batched_s)),
        ("estimates_match", Json::Bool(true)),
    ]));

    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(UniformSampling),
        Box::new(StratifiedSampling::proportional()),
        Box::new(MeasureBiasedValues),
        Box::new(MeasureBiasedBoundaries::default()),
        Box::new(Slev::default()),
    ];
    for est in &estimators {
        let run = |data: &BlockSet| {
            median_secs(scale.runs, || {
                let mut rng = StdRng::seed_from_u64(SEED + 21);
                est.estimate(data, scale.estimator_budget, &mut rng)
                    .expect("baseline estimate succeeds")
            })
        };
        let (scalar_s, scalar_est) = run(&fallback);
        let (batched_s, batched_est) = run(&native);
        assert_eq!(
            scalar_est.to_bits(),
            batched_est.to_bits(),
            "{} answer moved between kernel paths",
            est.name()
        );
        report.row(vec![
            format!("estimator/{}", est.name()),
            scale.estimator_rows.to_string(),
            "-".to_string(),
            fmt(scalar_s * 1e3, 2),
            fmt(batched_s * 1e3, 2),
            fmt(scalar_s / batched_s, 2),
        ]);
        rows.push(Json::obj(vec![
            ("name", Json::str(est.name())),
            ("scalar_ms", Json::num(scalar_s * 1e3)),
            ("batched_ms", Json::num(batched_s * 1e3)),
            ("speedup", Json::num(scalar_s / batched_s)),
            ("estimates_match", Json::Bool(true)),
        ]));
    }
    rows
}

/// Validates the emitted artifact: parseable JSON carrying every
/// section the downstream tooling reads.
fn validate_artifact(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    for path in [
        "bench",
        "mode",
        "sections.sample_kernel",
        "sections.scan_kernel",
        "sections.filtered_sampling",
        "sections.estimators",
    ] {
        if get(&doc, path).is_none() {
            return Err(format!("missing required key {path:?}"));
        }
    }
    for section in [
        "sample_kernel",
        "scan_kernel",
        "filtered_sampling",
        "estimators",
    ] {
        match get(&doc, &format!("sections.{section}")) {
            Some(Json::Arr(items)) if !items.is_empty() => {
                for item in items {
                    if get(item, "speedup").is_none() {
                        return Err(format!("{section} row lacks a speedup field"));
                    }
                }
            }
            _ => return Err(format!("section {section:?} is not a non-empty array")),
        }
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    println!(
        "M4 (kernels): scalar vs batched kernels, mode = {}, {} sample draws",
        scale.mode, scale.sample_draws
    );

    let mut report = Report::new(
        "exp_kernel_throughput",
        &[
            "sweep",
            "rows",
            "selectivity",
            "scalar M/s (or ms)",
            "batched M/s (or ms)",
            "speedup",
        ],
    );
    let sample_rows = sweep_sample_kernel(&scale, &mut report);
    let scan_rows = sweep_scan_kernel(&scale, &mut report);
    let (filtered_rows, low_sel_speedup) = sweep_filtered(&scale, &mut report);
    let estimator_rows = sweep_estimators(&scale, &mut report);
    report.finish();

    let doc = Json::obj(vec![
        ("bench", Json::str("exp_kernel_throughput")),
        ("mode", Json::str(scale.mode)),
        ("low_selectivity_speedup", Json::num(low_sel_speedup)),
        (
            "sections",
            Json::obj(vec![
                ("sample_kernel", Json::Arr(sample_rows)),
                ("scan_kernel", Json::Arr(scan_rows)),
                ("filtered_sampling", Json::Arr(filtered_rows)),
                ("estimators", Json::Arr(estimator_rows)),
            ]),
        ),
    ]);
    let text = doc.render();
    validate_artifact(&text).expect("emitted JSON must satisfy the schema");
    // Smoke results land under target/experiments — only full-scale
    // runs may touch the committed repo-root perf artifact.
    let path = if smoke {
        isla_bench::experiments_dir().join("BENCH_kernels.smoke.json")
    } else {
        bench_json_path("kernels")
    };
    std::fs::write(&path, &text).expect("write BENCH_kernels.json");
    println!("  [written {}]", path.display());

    // Re-read what actually landed on disk: the artifact the driver
    // consumes is the one that must validate.
    let on_disk = std::fs::read_to_string(&path).expect("re-read artifact");
    validate_artifact(&on_disk).expect("on-disk JSON must satisfy the schema");

    if smoke {
        println!("smoke mode: schema validated, speedup assertions skipped");
    } else {
        assert!(
            low_sel_speedup >= 2.0,
            "selection-vector sampling at the lowest selectivity must be ≥2× \
             the rejection baseline, got {low_sel_speedup:.2}×"
        );
        println!("filtered low-selectivity sweep: {low_sel_speedup:.1}× the rejection baseline");
    }
}
