//! M4 — kernel throughput: scalar vs batched sampling & scan kernels.
//!
//! Not a paper experiment: this bench tracks the storage kernel layer.
//! Every hot path is measured twice over the *same data* — once through
//! the batched kernels (`sample_batch` sorted gather, `scan_chunks`
//! contiguous slices, selection-vector filtered draws) and once through
//! the scalar path they replaced (forced via `ScalarFallbackBlock` /
//! rejection-sampling views) — so each row reports an honest same-run
//! speedup. Four sweeps:
//!
//! 1. **sample_kernel** — uniform value draws across block sizes;
//! 2. **scan_kernel** — full scans across block sizes;
//! 3. **filtered_sampling** — filtered draws across selectivities:
//!    compiled selection vectors vs per-draw rejection sampling;
//! 4. **estimators** — end-to-end wall time for ISLA and all baselines
//!    on batched vs scalar kernels, asserting the answers are
//!    bit-identical (the kernels may never change an estimate). SLEV is
//!    the exception by design: its `scalar_ms` is the dense two-scan
//!    algorithm and its `batched_ms` the sketch-backed mixture sampler —
//!    different sampling schemes, so the answers are asserted within a
//!    tolerance instead of bit-for-bit;
//! 5. **sketched_slev** — SLEV with moment sketches: the dense
//!    full-scan algorithm vs the mixture sampler on hook-provided vs
//!    scan-computed sketches (the latter two must agree bit for bit);
//! 6. **zone_map** — selection-vector compilation with and without
//!    min/max zone-map pruning on range-partitioned data, reporting how
//!    many blocks the sketches proved matchless.
//!
//! Results print as a table (CSV under `target/experiments/`) and are
//! written machine-readable to `BENCH_kernels.json` at the workspace
//! root. `--smoke` runs a seconds-scale configuration and validates the
//! emitted JSON schema (the CI hook), skipping the speedup assertions
//! that only make sense at full scale.

use std::sync::Arc;
use std::time::Instant;

use isla_baselines::{
    Estimator, MeasureBiasedBoundaries, MeasureBiasedValues, Slev, StratifiedSampling,
    UniformSampling,
};
use isla_bench::json::{get, parse, Json};
use isla_bench::{bench_json_path, fmt, Report};
use isla_core::engine::{self, RateSpec, SequentialScheduler};
use isla_core::IslaConfig;
use isla_datagen::normal_values;
use isla_storage::{
    pool_filtered_column, sample_from_block, scalar_fallback_set, BlockSet, CmpOp, ColumnPredicate,
    DataBlock, FilteredColumnView, MemBlock, RowFilter, RowsBlock, ScalarFallbackBlock,
    SetSelection,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 4_000;

/// One sweep's scale knobs (full vs `--smoke`).
struct Scale {
    mode: &'static str,
    block_rows: Vec<usize>,
    sample_draws: u64,
    filter_rows: usize,
    filter_draws: u64,
    estimator_rows: usize,
    estimator_budget: u64,
    /// Max |dense − sketched| SLEV estimate disagreement: the two are
    /// different unbiased samplers, so they agree statistically, not bit
    /// for bit. Sized ≫ the standard error at the sweep's budget.
    slev_tolerance: f64,
    runs: usize,
}

impl Scale {
    fn full() -> Self {
        Self {
            mode: "full",
            block_rows: vec![65_536, 1_048_576],
            sample_draws: 2_000_000,
            filter_rows: 1_048_576,
            filter_draws: 200_000,
            estimator_rows: 1_000_000,
            estimator_budget: 200_000,
            slev_tolerance: 0.5,
            runs: 5,
        }
    }

    fn smoke() -> Self {
        Self {
            mode: "smoke",
            block_rows: vec![8_192],
            sample_draws: 20_000,
            filter_rows: 16_384,
            filter_draws: 4_000,
            estimator_rows: 20_000,
            estimator_budget: 4_000,
            slev_tolerance: 3.0,
            runs: 2,
        }
    }
}

/// Median wall seconds of `runs` executions of `f` (which returns a
/// checksum kept alive so the work cannot be optimized away).
fn median_secs(runs: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut times = Vec::with_capacity(runs);
    let mut checksum = 0.0;
    for _ in 0..runs {
        let start = Instant::now();
        checksum = f();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], checksum)
}

/// Sweep 1: uniform value draws, batched sorted gather vs scalar loop.
fn sweep_sample_kernel(scale: &Scale, report: &mut Report) -> Vec<Json> {
    let mut rows = Vec::new();
    for &block_rows in &scale.block_rows {
        let native: Arc<dyn DataBlock> =
            Arc::new(MemBlock::new(normal_values(100.0, 20.0, block_rows, SEED)));
        let scalar_block = ScalarFallbackBlock(Arc::clone(&native));
        let draws = scale.sample_draws;
        let time_draws = |block: &dyn DataBlock| {
            median_secs(scale.runs, || {
                let mut rng = StdRng::seed_from_u64(SEED + 1);
                let mut sum = 0.0;
                sample_from_block(block, draws, &mut rng, &mut |v| sum += v)
                    .expect("sampling succeeds");
                sum
            })
        };
        let (scalar_s, scalar_sum) = time_draws(&scalar_block);
        let (batched_s, batched_sum) = time_draws(native.as_ref());
        assert_eq!(
            scalar_sum.to_bits(),
            batched_sum.to_bits(),
            "batched draws must be bit-identical to scalar draws"
        );
        let scalar_rate = draws as f64 / scalar_s;
        let batched_rate = draws as f64 / batched_s;
        report.row(vec![
            "sample".to_string(),
            block_rows.to_string(),
            "-".to_string(),
            fmt(scalar_rate / 1e6, 2),
            fmt(batched_rate / 1e6, 2),
            fmt(batched_rate / scalar_rate, 2),
        ]);
        rows.push(Json::obj(vec![
            ("block_rows", Json::num(block_rows as f64)),
            ("draws", Json::num(draws as f64)),
            ("scalar_samples_per_s", Json::num(scalar_rate)),
            ("batched_samples_per_s", Json::num(batched_rate)),
            ("speedup", Json::num(batched_rate / scalar_rate)),
        ]));
    }
    rows
}

/// Sweep 2: full scans, chunked slices vs per-value dispatch.
fn sweep_scan_kernel(scale: &Scale, report: &mut Report) -> Vec<Json> {
    let mut rows = Vec::new();
    for &block_rows in &scale.block_rows {
        let native: Arc<dyn DataBlock> = Arc::new(MemBlock::new(normal_values(
            50.0,
            10.0,
            block_rows,
            SEED ^ 1,
        )));
        let (scalar_s, scalar_sum) = median_secs(scale.runs, || {
            let mut sum = 0.0;
            native.scan(&mut |v| sum += v).expect("scan succeeds");
            sum
        });
        let (chunked_s, chunked_sum) = median_secs(scale.runs, || {
            let mut sum = 0.0;
            native
                .scan_chunks(&mut |chunk| {
                    for &v in chunk {
                        sum += v;
                    }
                })
                .expect("scan succeeds");
            sum
        });
        assert_eq!(
            scalar_sum.to_bits(),
            chunked_sum.to_bits(),
            "chunked scans must fold the identical value order"
        );
        let scalar_rate = block_rows as f64 / scalar_s;
        let chunked_rate = block_rows as f64 / chunked_s;
        report.row(vec![
            "scan".to_string(),
            block_rows.to_string(),
            "-".to_string(),
            fmt(scalar_rate / 1e6, 2),
            fmt(chunked_rate / 1e6, 2),
            fmt(chunked_rate / scalar_rate, 2),
        ]);
        rows.push(Json::obj(vec![
            ("block_rows", Json::num(block_rows as f64)),
            ("scalar_rows_per_s", Json::num(scalar_rate)),
            ("batched_rows_per_s", Json::num(chunked_rate)),
            ("speedup", Json::num(chunked_rate / scalar_rate)),
        ]));
    }
    rows
}

/// Sweep 3: filtered draws — compiled selection vectors vs rejection
/// sampling — across selectivities. Returns the JSON rows plus the
/// speedup measured at the lowest selectivity (the acceptance metric).
fn sweep_filtered(scale: &Scale, report: &mut Report) -> (Vec<Json>, f64) {
    let n = scale.filter_rows;
    let value = normal_values(100.0, 20.0, n, SEED ^ 2);
    // Auxiliary predicate column: uniform in [0, 1), so `aux < s`
    // selects an s-fraction of the rows.
    let aux: Vec<f64> = {
        let mut rng = StdRng::seed_from_u64(SEED ^ 3);
        use rand::Rng;
        (0..n).map(|_| rng.random_range(0.0..1.0)).collect()
    };
    let set = RowsBlock::split(vec![value, aux], 8);
    let mut rows = Vec::new();
    let mut low_sel_speedup = 0.0;
    for &selectivity in &[0.5, 0.1, 0.01] {
        let filter = RowFilter::new(vec![ColumnPredicate {
            column: 1,
            op: CmpOp::Lt,
            value: selectivity,
        }]);

        // Rejection baseline: views constructed directly (no compiled
        // selection), pooled over a single block so no block can run
        // out of matches.
        let inner: Vec<Arc<dyn DataBlock>> = set.iter().map(Arc::clone).collect();
        let rejection: Vec<Arc<dyn DataBlock>> = inner
            .iter()
            .map(|b| {
                Arc::new(FilteredColumnView::new(
                    Arc::clone(b),
                    0,
                    Arc::new(filter.clone()),
                )) as Arc<dyn DataBlock>
            })
            .collect();

        // Compiled path: the helper builds (and caches) the selection.
        let build_start = Instant::now();
        let compiled = pool_filtered_column(&set, 0, filter.clone());
        let build_s = build_start.elapsed().as_secs_f64();

        let draws = scale.filter_draws;
        let per_view = draws / rejection.len() as u64;
        let (scalar_s, _) = median_secs(scale.runs, || {
            let mut rng = StdRng::seed_from_u64(SEED + 9);
            let mut sum = 0.0;
            for view in &rejection {
                sample_from_block(view.as_ref(), per_view, &mut rng, &mut |v| sum += v)
                    .expect("rejection sampling succeeds");
            }
            sum
        });
        let (compiled_s, _) = median_secs(scale.runs, || {
            let mut rng = StdRng::seed_from_u64(SEED + 9);
            let mut sum = 0.0;
            sample_from_block(compiled.block(0).as_ref(), draws, &mut rng, &mut |v| {
                sum += v
            })
            .expect("selection sampling succeeds");
            sum
        });
        let used = per_view * rejection.len() as u64;
        let scalar_rate = used as f64 / scalar_s;
        let compiled_rate = draws as f64 / compiled_s;
        let speedup = compiled_rate / scalar_rate;
        low_sel_speedup = speedup; // last iteration = lowest selectivity
        report.row(vec![
            "filtered".to_string(),
            n.to_string(),
            fmt(selectivity, 2),
            fmt(scalar_rate / 1e6, 2),
            fmt(compiled_rate / 1e6, 2),
            fmt(speedup, 2),
        ]);
        rows.push(Json::obj(vec![
            ("rows", Json::num(n as f64)),
            ("selectivity", Json::num(selectivity)),
            ("draws", Json::num(draws as f64)),
            ("selection_build_s", Json::num(build_s)),
            ("scalar_samples_per_s", Json::num(scalar_rate)),
            ("batched_samples_per_s", Json::num(compiled_rate)),
            ("speedup", Json::num(speedup)),
        ]));
    }
    (rows, low_sel_speedup)
}

/// Sweep 4: end-to-end estimators on batched vs scalar kernels —
/// answers must agree bit for bit; only the wall time may move. SLEV is
/// special-cased (dense algorithm vs sketch-backed sampler, tolerance
/// check); returns the JSON rows plus its measured speedup.
fn sweep_estimators(scale: &Scale, report: &mut Report) -> (Vec<Json>, f64) {
    let native = BlockSet::from_values(
        normal_values(100.0, 20.0, scale.estimator_rows, SEED ^ 4),
        16,
    );
    let fallback = scalar_fallback_set(&native);
    let mut rows = Vec::new();

    // ISLA runs the whole pipeline; its budget is set by the precision.
    let cfg = IslaConfig::builder().precision(0.1).build().unwrap();
    let isla_run = |data: &BlockSet| {
        median_secs(scale.runs, || {
            let mut rng = StdRng::seed_from_u64(SEED + 20);
            engine::run(
                data,
                &cfg,
                RateSpec::Derived,
                &SequentialScheduler,
                &mut rng,
            )
            .expect("engine run succeeds")
            .estimate
        })
    };
    let (scalar_s, scalar_est) = isla_run(&fallback);
    let (batched_s, batched_est) = isla_run(&native);
    assert_eq!(
        scalar_est.to_bits(),
        batched_est.to_bits(),
        "ISLA answer moved"
    );
    report.row(vec![
        "estimator/ISLA".to_string(),
        scale.estimator_rows.to_string(),
        "-".to_string(),
        fmt(scalar_s * 1e3, 2),
        fmt(batched_s * 1e3, 2),
        fmt(scalar_s / batched_s, 2),
    ]);
    rows.push(Json::obj(vec![
        ("name", Json::str("ISLA")),
        ("scalar_ms", Json::num(scalar_s * 1e3)),
        ("batched_ms", Json::num(batched_s * 1e3)),
        ("speedup", Json::num(scalar_s / batched_s)),
        ("estimates_match", Json::Bool(true)),
    ]));

    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(UniformSampling),
        Box::new(StratifiedSampling::proportional()),
        Box::new(MeasureBiasedValues),
        Box::new(MeasureBiasedBoundaries::default()),
    ];
    for est in &estimators {
        let run = |data: &BlockSet| {
            median_secs(scale.runs, || {
                let mut rng = StdRng::seed_from_u64(SEED + 21);
                est.estimate(data, scale.estimator_budget, &mut rng)
                    .expect("baseline estimate succeeds")
            })
        };
        let (scalar_s, scalar_est) = run(&fallback);
        let (batched_s, batched_est) = run(&native);
        assert_eq!(
            scalar_est.to_bits(),
            batched_est.to_bits(),
            "{} answer moved between kernel paths",
            est.name()
        );
        report.row(vec![
            format!("estimator/{}", est.name()),
            scale.estimator_rows.to_string(),
            "-".to_string(),
            fmt(scalar_s * 1e3, 2),
            fmt(batched_s * 1e3, 2),
            fmt(scalar_s / batched_s, 2),
        ]);
        rows.push(Json::obj(vec![
            ("name", Json::str(est.name())),
            ("scalar_ms", Json::num(scalar_s * 1e3)),
            ("batched_ms", Json::num(batched_s * 1e3)),
            ("speedup", Json::num(scalar_s / batched_s)),
            ("estimates_match", Json::Bool(true)),
        ]));
    }

    // SLEV: `scalar_ms` is the dense two-scan algorithm on scalar
    // kernels (the pre-sketch reality this row historically recorded);
    // `batched_ms` is the sketch-backed mixture sampler. The algorithms
    // draw different samples, so the answers agree within a statistical
    // tolerance rather than bit for bit.
    let slev = Slev::default();
    let (dense_s, dense_est) = median_secs(scale.runs, || {
        let mut rng = StdRng::seed_from_u64(SEED + 22);
        slev.estimate_dense(
            &fallback,
            scale.estimator_budget,
            &SequentialScheduler,
            &mut rng,
        )
        .expect("dense SLEV succeeds")
    });
    let (sketched_s, sketched_est) = median_secs(scale.runs, || {
        let mut rng = StdRng::seed_from_u64(SEED + 22);
        slev.estimate(&native, scale.estimator_budget, &mut rng)
            .expect("sketched SLEV succeeds")
    });
    let delta = (dense_est - sketched_est).abs();
    assert!(
        delta <= scale.slev_tolerance,
        "dense ({dense_est}) and sketched ({sketched_est}) SLEV disagree beyond tolerance"
    );
    let slev_speedup = dense_s / sketched_s;
    report.row(vec![
        "estimator/SLEV".to_string(),
        scale.estimator_rows.to_string(),
        "-".to_string(),
        fmt(dense_s * 1e3, 2),
        fmt(sketched_s * 1e3, 2),
        fmt(slev_speedup, 2),
    ]);
    rows.push(Json::obj(vec![
        ("name", Json::str("SLEV")),
        ("scalar_ms", Json::num(dense_s * 1e3)),
        ("batched_ms", Json::num(sketched_s * 1e3)),
        ("speedup", Json::num(slev_speedup)),
        ("estimates_match", Json::Bool(true)),
        ("estimate_delta", Json::num(delta)),
    ]));
    (rows, slev_speedup)
}

/// Sweep 5: SLEV with moment sketches — the dense full-scan algorithm
/// vs the mixture sampler, the latter on both sketch provenances
/// (constructor hooks and lazy scan computation). The two sketched runs
/// must agree bit for bit: the one-fold law makes hook and scanned
/// sketches identical, and the sampler is deterministic given the
/// sketches and the seed.
fn sweep_sketched_slev(scale: &Scale, report: &mut Report) -> Vec<Json> {
    let native = BlockSet::from_values(
        normal_values(100.0, 20.0, scale.estimator_rows, SEED ^ 4),
        16,
    );
    let slev = Slev::default();
    let budget = scale.estimator_budget;
    let (dense_s, _) = median_secs(scale.runs, || {
        let mut rng = StdRng::seed_from_u64(SEED + 23);
        slev.estimate_dense(&native, budget, &SequentialScheduler, &mut rng)
            .expect("dense SLEV succeeds")
    });
    let (hook_s, hook_est) = median_secs(scale.runs, || {
        let mut rng = StdRng::seed_from_u64(SEED + 23);
        slev.estimate(&native, budget, &mut rng)
            .expect("sketched SLEV succeeds")
    });
    let (scanned_s, scanned_est) = median_secs(scale.runs, || {
        // A fresh fallback set every run: empty sketch cache, no hooks,
        // so the estimator scan-computes every sketch within the timed
        // region.
        let fresh = scalar_fallback_set(&native);
        let mut rng = StdRng::seed_from_u64(SEED + 23);
        slev.estimate(&fresh, budget, &mut rng)
            .expect("scan-sketched SLEV succeeds")
    });
    assert_eq!(
        hook_est.to_bits(),
        scanned_est.to_bits(),
        "hook-provided and scan-computed sketches must yield the identical estimate"
    );
    let mut rows = Vec::new();
    for (path, secs) in [
        ("dense_full_scan", dense_s),
        ("sketched_metadata", hook_s),
        ("scan_computed_sketches", scanned_s),
    ] {
        report.row(vec![
            format!("slev/{path}"),
            scale.estimator_rows.to_string(),
            "-".to_string(),
            fmt(dense_s * 1e3, 2),
            fmt(secs * 1e3, 2),
            fmt(dense_s / secs, 2),
        ]);
        rows.push(Json::obj(vec![
            ("path", Json::str(path)),
            ("ms", Json::num(secs * 1e3)),
            ("speedup", Json::num(dense_s / secs)),
        ]));
    }
    rows
}

/// Sweep 6: zone-map pruning — selection-vector compilation over
/// range-partitioned data with and without sketches. The compiled
/// selections must be identical; only the scan work may differ.
fn sweep_zone_map(scale: &Scale, report: &mut Report) -> (Vec<Json>, usize) {
    let n = scale.filter_rows;
    // Sorted values: each of the 16 blocks covers a contiguous range,
    // so a high-range predicate is provably matchless on all but the
    // last block.
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let set = RowsBlock::split(vec![values], 16);
    let blocks: Vec<Arc<dyn DataBlock>> = set.iter().map(Arc::clone).collect();
    let cutoff = n as f64 * 0.95 - 0.5;
    let filter = RowFilter::new(vec![ColumnPredicate {
        column: 0,
        op: CmpOp::Gt,
        value: cutoff,
    }]);
    let sketches = set.ready_sketches();

    let (scan_s, scan_matches) = median_secs(scale.runs, || {
        let sel = SetSelection::build(&blocks, &filter, None).expect("selection builds");
        sel.total_matches() as f64
    });
    let (pruned_s, pruned_matches) = median_secs(scale.runs, || {
        let sel = SetSelection::build(&blocks, &filter, Some(&sketches)).expect("selection builds");
        sel.total_matches() as f64
    });
    assert_eq!(
        scan_matches.to_bits(),
        pruned_matches.to_bits(),
        "pruning may never change which rows match"
    );
    let pruned_blocks = SetSelection::build(&blocks, &filter, Some(&sketches))
        .expect("selection builds")
        .pruned_blocks();

    let speedup = scan_s / pruned_s;
    report.row(vec![
        "zone_map".to_string(),
        n.to_string(),
        fmt(0.05, 2),
        fmt(scan_s * 1e3, 2),
        fmt(pruned_s * 1e3, 2),
        fmt(speedup, 2),
    ]);
    let rows = vec![Json::obj(vec![
        ("rows", Json::num(n as f64)),
        ("blocks", Json::num(blocks.len() as f64)),
        ("selectivity", Json::num(0.05)),
        ("scan_build_ms", Json::num(scan_s * 1e3)),
        ("pruned_build_ms", Json::num(pruned_s * 1e3)),
        ("pruned_blocks", Json::num(pruned_blocks as f64)),
        ("matches", Json::num(scan_matches)),
        ("speedup", Json::num(speedup)),
    ])];
    (rows, pruned_blocks)
}

/// Validates the emitted artifact: parseable JSON carrying every
/// section the downstream tooling reads.
fn validate_artifact(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    for path in [
        "bench",
        "mode",
        "sections.sample_kernel",
        "sections.scan_kernel",
        "sections.filtered_sampling",
        "sections.estimators",
        "sections.sketched_slev",
        "sections.zone_map",
    ] {
        if get(&doc, path).is_none() {
            return Err(format!("missing required key {path:?}"));
        }
    }
    for section in [
        "sample_kernel",
        "scan_kernel",
        "filtered_sampling",
        "estimators",
        "sketched_slev",
        "zone_map",
    ] {
        match get(&doc, &format!("sections.{section}")) {
            Some(Json::Arr(items)) if !items.is_empty() => {
                for item in items {
                    if get(item, "speedup").is_none() {
                        return Err(format!("{section} row lacks a speedup field"));
                    }
                }
            }
            _ => return Err(format!("section {section:?} is not a non-empty array")),
        }
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    println!(
        "M4 (kernels): scalar vs batched kernels, mode = {}, {} sample draws",
        scale.mode, scale.sample_draws
    );

    let mut report = Report::new(
        "exp_kernel_throughput",
        &[
            "sweep",
            "rows",
            "selectivity",
            "scalar M/s (or ms)",
            "batched M/s (or ms)",
            "speedup",
        ],
    );
    let sample_rows = sweep_sample_kernel(&scale, &mut report);
    let scan_rows = sweep_scan_kernel(&scale, &mut report);
    let (filtered_rows, low_sel_speedup) = sweep_filtered(&scale, &mut report);
    let (estimator_rows, slev_speedup) = sweep_estimators(&scale, &mut report);
    let sketched_slev_rows = sweep_sketched_slev(&scale, &mut report);
    let (zone_map_rows, pruned_blocks) = sweep_zone_map(&scale, &mut report);
    report.finish();

    let doc = Json::obj(vec![
        ("bench", Json::str("exp_kernel_throughput")),
        ("mode", Json::str(scale.mode)),
        ("low_selectivity_speedup", Json::num(low_sel_speedup)),
        (
            "sections",
            Json::obj(vec![
                ("sample_kernel", Json::Arr(sample_rows)),
                ("scan_kernel", Json::Arr(scan_rows)),
                ("filtered_sampling", Json::Arr(filtered_rows)),
                ("estimators", Json::Arr(estimator_rows)),
                ("sketched_slev", Json::Arr(sketched_slev_rows)),
                ("zone_map", Json::Arr(zone_map_rows)),
            ]),
        ),
    ]);
    let text = doc.render();
    validate_artifact(&text).expect("emitted JSON must satisfy the schema");
    // Smoke results land under target/experiments — only full-scale
    // runs may touch the committed repo-root perf artifact.
    let path = if smoke {
        isla_bench::experiments_dir().join("BENCH_kernels.smoke.json")
    } else {
        bench_json_path("kernels")
    };
    std::fs::write(&path, &text).expect("write BENCH_kernels.json");
    println!("  [written {}]", path.display());

    // Re-read what actually landed on disk: the artifact the driver
    // consumes is the one that must validate.
    let on_disk = std::fs::read_to_string(&path).expect("re-read artifact");
    validate_artifact(&on_disk).expect("on-disk JSON must satisfy the schema");

    if smoke {
        println!("smoke mode: schema validated, speedup assertions skipped");
    } else {
        assert!(
            low_sel_speedup >= 2.0,
            "selection-vector sampling at the lowest selectivity must be ≥2× \
             the rejection baseline, got {low_sel_speedup:.2}×"
        );
        println!("filtered low-selectivity sweep: {low_sel_speedup:.1}× the rejection baseline");
        assert!(
            slev_speedup >= 5.0,
            "sketch-backed SLEV must be ≥5× the dense scalar algorithm, got {slev_speedup:.2}×"
        );
        println!("sketched SLEV: {slev_speedup:.1}× the dense scalar algorithm");
        assert!(
            pruned_blocks > 0,
            "zone maps must prune at least one block on range-partitioned data"
        );
        println!("zone maps pruned {pruned_blocks}/16 blocks at 5% selectivity");
    }
}
