//! E9 — §VIII-D: non-i.i.d. blocks. Five blocks from N(100,20²),
//! N(50,10²), N(80,30²), N(150,60²), N(120,40²) with 10⁸ rows each
//! (virtual), truth 100, e = 0.5, five runs.
//!
//! Paper answers: 99.8538, 100.066, 100.194, 100.321, 99.8333 — all
//! within the precision.

use isla_bench::{fmt, paper, Report};
use isla_core::noniid::NonIidAggregator;
use isla_core::IslaConfig;
use isla_datagen::synthetic::noniid_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E9 (§VIII-D): non-i.i.d. blocks, e=0.5, truth 100, 5 runs");
    let config = IslaConfig::builder().precision(0.5).build().unwrap();
    let aggregator = NonIidAggregator::new(config).unwrap();
    let ds = noniid_dataset(100_000_000, 1300);

    let mut report = Report::new(
        "exp_noniid",
        &["run", "estimate", "abs error", "paper answer"],
    );
    let mut within = 0;
    for i in 0..5usize {
        let mut rng = StdRng::seed_from_u64(8000 + i as u64);
        let result = aggregator.aggregate(&ds.blocks, &mut rng).unwrap();
        let err = (result.estimate - 100.0).abs();
        within += i32::from(err <= 0.5);
        report.row(vec![
            (i + 1).to_string(),
            fmt(result.estimate, 4),
            fmt(err, 4),
            fmt(paper::NONIID[i], 4),
        ]);
    }
    report.finish();
    assert!(
        within >= 4,
        "at least 4/5 non-i.i.d. runs should satisfy the precision, got {within}"
    );
    println!("shape check: non-i.i.d. answers satisfy e=0.5 (§VIII-D).");
}
