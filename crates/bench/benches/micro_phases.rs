//! M1 — criterion micro-benches for ISLA's hot paths: the sampling-phase
//! fold (Algorithm 1), the iteration phase (Algorithm 2), Theorem-3
//! coefficient computation, block sampling, and the normal quantile.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use isla_core::accumulate::SampleAccumulator;
use isla_core::{iteration_phase, DataBoundaries, IslaConfig, LinearEstimator};
use isla_datagen::normal_values;
use isla_stats::normal_quantile;
use isla_storage::{DataBlock, MemBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn boundaries() -> DataBoundaries {
    DataBoundaries::new(100.0, 20.0, 0.5, 2.0)
}

fn bench_sampling_phase(c: &mut Criterion) {
    let values = normal_values(100.0, 20.0, 100_000, 1);
    let mut group = c.benchmark_group("algorithm1_fold");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("offer_100k", |b| {
        b.iter(|| {
            let mut acc = SampleAccumulator::new(boundaries());
            for &v in &values {
                acc.offer(black_box(v));
            }
            black_box(acc.u() + acc.v())
        })
    });
    group.finish();
}

fn bench_iteration_phase(c: &mut Criterion) {
    let values = normal_values(100.0, 20.0, 50_000, 2);
    let mut acc = SampleAccumulator::new(boundaries());
    for &v in &values {
        acc.offer(v);
    }
    let config = IslaConfig::builder().precision(0.1).build().unwrap();
    c.bench_function("algorithm2_iteration", |b| {
        b.iter(|| black_box(iteration_phase(black_box(&acc), 100.05, &config).answer))
    });
}

fn bench_theorem3(c: &mut Criterion) {
    let values = normal_values(100.0, 20.0, 50_000, 3);
    let mut acc = SampleAccumulator::new(boundaries());
    for &v in &values {
        acc.offer(v);
    }
    c.bench_function("theorem3_coefficients", |b| {
        b.iter(|| {
            black_box(
                LinearEstimator::from_moments(
                    black_box(acc.param_s()),
                    black_box(acc.param_l()),
                    1.0,
                )
                .unwrap()
                .k,
            )
        })
    });
}

fn bench_block_sampling(c: &mut Criterion) {
    let block = MemBlock::new(normal_values(100.0, 20.0, 1_000_000, 4));
    let mut group = c.benchmark_group("block_sampling");
    group.throughput(Throughput::Elements(1));
    group.bench_function("memblock_sample_one", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(block.sample_one(&mut rng).unwrap()))
    });
    group.finish();
}

fn bench_normal_quantile(c: &mut Criterion) {
    c.bench_function("normal_quantile", |b| {
        let mut p = 0.001;
        b.iter(|| {
            p += 1e-6;
            if p >= 0.999 {
                p = 0.001;
            }
            black_box(normal_quantile(black_box(p)))
        })
    });
}

criterion_group!(
    benches,
    bench_sampling_phase,
    bench_iteration_phase,
    bench_theorem3,
    bench_block_sampling,
    bench_normal_quantile
);
criterion_main!(benches);
