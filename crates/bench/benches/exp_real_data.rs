//! E13 — §VIII-G: the real-data experiments on calibrated stand-ins
//! (substitutions in DESIGN.md).
//!
//! * Salary (Census-Income KDD): 299,285 rows, published mean 1740.38;
//!   ISLA gets a 10,000-sample budget versus 20,000 for the baselines —
//!   the paper's handicap setting.
//! * TLC trip distance ×1000: published size 10,906,858 and mean 4648.2;
//!   run here at 2M rows for harness time, same budgets.

use isla_baselines::{
    Estimator, IslaEstimator, MeasureBiasedBoundaries, MeasureBiasedValues, StratifiedSampling,
    UniformSampling,
};
use isla_bench::{fmt, paper, Report};
use isla_datagen::{salary, tlc};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_panel(
    name: &str,
    data: &isla_datagen::Dataset,
    isla_budget: u64,
    baseline_budget: u64,
    paper_truth: f64,
    paper_answers: &[(&str, f64); 5],
) -> Vec<(String, f64)> {
    println!(
        "{name}: {} rows, scan truth {:.2} (published {paper_truth})",
        data.blocks.total_len(),
        data.true_mean
    );
    let estimators: Vec<(Box<dyn Estimator>, u64)> = vec![
        (Box::new(IslaEstimator::default()), isla_budget),
        (Box::new(MeasureBiasedValues), baseline_budget),
        (
            Box::new(MeasureBiasedBoundaries::default()),
            baseline_budget,
        ),
        (Box::new(UniformSampling), baseline_budget),
        (
            Box::new(StratifiedSampling::proportional()),
            baseline_budget,
        ),
    ];
    let mut report = Report::new(
        format!("exp_real_data_{name}"),
        &["method", "budget", "estimate", "abs error", "paper answer"],
    );
    let mut outcomes = Vec::new();
    for ((estimator, budget), &(paper_name, paper_answer)) in estimators.iter().zip(paper_answers) {
        assert_eq!(estimator.name(), paper_name);
        // Median of 5 seeds for stability.
        let mut values: Vec<f64> = (0..5)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                estimator
                    .estimate(&data.blocks, *budget, &mut rng)
                    .expect("estimation succeeds")
            })
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let value = values[values.len() / 2];
        report.row(vec![
            estimator.name().to_string(),
            budget.to_string(),
            fmt(value, 2),
            fmt((value - data.true_mean).abs(), 2),
            fmt(paper_answer, 2),
        ]);
        outcomes.push((estimator.name().to_string(), value));
    }
    report.finish();
    outcomes
}

fn main() {
    println!("E13 (§VIII-G): real-data stand-ins");
    let salary = salary::salary_dataset(10, 1700);
    let salary_out = run_panel(
        "salary",
        &salary,
        10_000,
        20_000,
        paper::SALARY.0,
        &paper::SALARY.1,
    );
    // Shape: ISLA at half budget stays close; MV grossly overshoots.
    let get = |out: &[(String, f64)], n: &str| out.iter().find(|(name, _)| name == n).unwrap().1;
    let truth = salary.true_mean;
    assert!(
        (get(&salary_out, "ISLA") - truth).abs() < (get(&salary_out, "MV") - truth).abs(),
        "salary: ISLA must beat MV"
    );
    assert!(
        (get(&salary_out, "MV") - truth) / truth > 0.2,
        "salary: MV should overshoot a skewed mean substantially"
    );

    let tlc = tlc::tlc_dataset_sized(2_000_000, 10, 1800);
    let tlc_out = run_panel("tlc", &tlc, 10_000, 20_000, paper::TLC.0, &paper::TLC.1);
    let truth = tlc.true_mean;
    let isla_rel = (get(&tlc_out, "ISLA") - truth).abs() / truth;
    let mv_rel = (get(&tlc_out, "MV") - truth).abs() / truth;
    assert!(
        isla_rel < mv_rel,
        "tlc: ISLA ({isla_rel:.3}) must beat MV ({mv_rel:.3})"
    );
    assert!(
        isla_rel < 0.10,
        "tlc: ISLA relative error {isla_rel:.3} should stay under 10% \
         (paper's run: 2.8%)"
    );
    println!("shape check: ISLA robust on both skewed stand-ins at half budget (§VIII-G).");
}
