//! M7 — fault tolerance: the cost and quality of surviving failures.
//!
//! Not a paper experiment: the paper assumes storage that answers; this
//! bench measures the robustness layer grown around the estimator. The
//! estimator's per-block partials combine order-invariantly, so an
//! answer over surviving blocks stays valid with a widened confidence
//! interval — the question is what the machinery costs. Three sections:
//!
//! 1. **overhead** — the disarmed hook tax: median query latency over
//!    bare blocks vs the same blocks wrapped in `FaultyBlock` with
//!    `BlockFault::None`. Gated at ≤ 2% in full mode (smoke runs are
//!    too short to measure it honestly);
//! 2. **recovery** — the latency of riding out transient faults: a
//!    sweep over transient-fault rates, each query retrying failed
//!    blocks in place under a deterministic fixed backoff. Answers must
//!    stay bit-identical to the fault-free run (failed accesses consume
//!    no RNG draws, so recovery is stream-neutral);
//! 3. **quality** — degradation vs permanent loss rate: coverage, the
//!    widened half-width, and the achieved error against the exact
//!    pre-loss mean, as more of the block set is lost.
//!
//! Results print as a table (CSV under `target/experiments/`) and are
//! written machine-readable to `BENCH_faults.json` at the workspace
//! root. `--smoke` runs a seconds-scale configuration and validates the
//! emitted JSON schema (the CI hook).

use std::time::{Duration, Instant};

use isla_bench::json::{get, parse, Json};
use isla_bench::{bench_json_path, fmt, Report};
use isla_core::engine::{Backoff, RetryPolicy};
use isla_datagen::normal_values;
use isla_query::{parse as parse_sql, Catalog, ExecPolicy, QueryResult, QuerySession, Table};
use isla_storage::{BlockFault, BlockSet, DataBlock, FaultPlan, FaultyBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SEED: u64 = 7_000;
const SQL: &str = "SELECT AVG(x) FROM t WITH PRECISION 0.2";

/// One run's scale knobs (full vs `--smoke`).
struct Scale {
    mode: &'static str,
    rows: usize,
    blocks: usize,
    reps: usize,
}

impl Scale {
    fn full() -> Self {
        Self {
            mode: "full",
            rows: 1_000_000,
            blocks: 16,
            reps: 21,
        }
    }

    fn smoke() -> Self {
        Self {
            mode: "smoke",
            rows: 60_000,
            blocks: 12,
            reps: 3,
        }
    }
}

fn values(scale: &Scale) -> Vec<f64> {
    normal_values(100.0, 20.0, scale.rows, SEED)
}

fn catalog_for(data: BlockSet) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register("t", Table::new(vec![("x", data)]));
    catalog
}

/// Runs `reps` repetitions of the bench query on a fresh session each
/// time (cold pre-estimation cache: the pilots are part of the cost the
/// hook taxes), returning the median wall seconds and the last result.
fn time_query(catalog: &Catalog, policy: &ExecPolicy, reps: usize) -> (f64, QueryResult) {
    let query = parse_sql(SQL).expect("bench query parses");
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for rep in 0..reps {
        let session = QuerySession::with_policy(*policy);
        let mut rng = StdRng::seed_from_u64(SEED + rep as u64);
        let t = Instant::now();
        let r = session
            .execute(&query, catalog, &mut rng)
            .expect("bench query succeeds");
        times.push(t.elapsed().as_secs_f64());
        last = Some(r);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (times[times.len() / 2], last.expect("reps >= 1"))
}

/// Section 1: bare blocks vs `FaultyBlock(BlockFault::None)` wrappers.
fn overhead_section(scale: &Scale, report: &mut Report) -> Json {
    let bare = BlockSet::from_values(values(scale), scale.blocks);
    let disarmed = BlockSet::new(
        bare.iter()
            .map(|b| {
                Arc::new(FaultyBlock::new(Arc::clone(b), BlockFault::None, None))
                    as Arc<dyn DataBlock>
            })
            .collect(),
    );
    let policy = ExecPolicy::new().pilot_seed(SEED);
    let (bare_s, bare_r) = time_query(&catalog_for(bare), &policy, scale.reps);
    let (hook_s, hook_r) = time_query(&catalog_for(disarmed), &policy, scale.reps);
    assert_eq!(
        bare_r.value.to_bits(),
        hook_r.value.to_bits(),
        "a disarmed hook must not perturb the answer"
    );
    let overhead = hook_s / bare_s - 1.0;
    if scale.mode == "full" {
        assert!(
            overhead <= 0.02,
            "disarmed fault hook costs {:.2}% (> 2% gate)",
            overhead * 100.0
        );
    }
    report.row(vec![
        "overhead".to_string(),
        format!("bare_ms={}", fmt(bare_s * 1e3, 3)),
        format!("hook_ms={}", fmt(hook_s * 1e3, 3)),
        format!("overhead={}%", fmt(overhead * 100.0, 2)),
        "bit_identical=true".to_string(),
    ]);
    Json::obj(vec![
        ("bare_ms", Json::num(bare_s * 1e3)),
        ("hooked_ms", Json::num(hook_s * 1e3)),
        ("overhead_frac", Json::num(overhead)),
        ("bit_identical", Json::Bool(true)),
        ("gated", Json::Bool(scale.mode == "full")),
    ])
}

/// Section 2: transient-fault rate vs recovery latency. Every armed
/// run must answer bit-identically to the fault-free run.
fn recovery_section(scale: &Scale, report: &mut Report) -> Json {
    let data = BlockSet::from_values(values(scale), scale.blocks);
    let policy = ExecPolicy::new()
        .pilot_seed(SEED)
        .best_effort()
        .retry(RetryPolicy::attempts(3).with_backoff(Backoff::Fixed(Duration::from_millis(1))));
    let mut rows = Vec::new();
    let mut baseline_bits = None;
    for rate in [0.0, 0.25, 0.5, 1.0] {
        let plan = FaultPlan::new(SEED).transient(rate, 2);
        // Re-arm per repetition so every run pays the same recovery
        // (arming resets the per-block transient counters).
        let query = parse_sql(SQL).expect("bench query parses");
        let mut times = Vec::with_capacity(scale.reps);
        let mut last = None;
        for rep in 0..scale.reps {
            let catalog = catalog_for(plan.arm(&data));
            let session = QuerySession::with_policy(policy);
            let mut rng = StdRng::seed_from_u64(SEED + rep as u64);
            let t = Instant::now();
            let r = session
                .execute(&query, &catalog, &mut rng)
                .expect("transient faults recover inside the budget");
            times.push(t.elapsed().as_secs_f64());
            last = Some(r);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ms = times[times.len() / 2] * 1e3;
        let result = last.expect("reps >= 1");
        let bits = result.value.to_bits();
        let identical = *baseline_bits.get_or_insert(bits) == bits;
        assert!(identical, "recovered answers must be stream-neutral");
        assert!(
            result.degradation.is_none(),
            "recovered transients are not degradation"
        );
        report.row(vec![
            "recovery".to_string(),
            format!("rate={rate}"),
            format!("median_ms={}", fmt(median_ms, 3)),
            "bit_identical=true".to_string(),
            String::new(),
        ]);
        rows.push(Json::obj(vec![
            ("transient_rate", Json::num(rate)),
            ("median_ms", Json::num(median_ms)),
            ("bit_identical", Json::Bool(true)),
        ]));
    }
    Json::Arr(rows)
}

/// Section 3: answer quality vs permanent loss rate.
fn quality_section(scale: &Scale, report: &mut Report) -> Json {
    let raw = values(scale);
    let exact = raw.iter().sum::<f64>() / raw.len() as f64;
    let data = BlockSet::from_values(raw, scale.blocks);
    let policy = ExecPolicy::new()
        .pilot_seed(SEED)
        .best_effort()
        .retry(RetryPolicy::attempts(2));
    let query = parse_sql(SQL).expect("bench query parses");
    let mut rows = Vec::new();
    for loss in [0.0, 0.15, 0.3, 0.45] {
        // Per-block fault draws are hashed, so a given probability may
        // round to zero losses on a small block set; search the seed
        // space for a plan whose realized loss matches the nominal
        // rate, keeping the sweep monotone and the run deterministic.
        let want = (loss * scale.blocks as f64).round() as usize;
        let plan = (SEED..SEED + 512)
            .map(|s| FaultPlan::new(s).lose(loss))
            .find(|p| {
                (0..scale.blocks)
                    .filter(|&i| p.fault_for(i) == BlockFault::Lost)
                    .count()
                    == want
            })
            .expect("some seed must realize the nominal loss rate");
        let catalog = catalog_for(plan.arm(&data));
        let session = QuerySession::with_policy(policy);
        let mut rng = StdRng::seed_from_u64(SEED);
        let r = session
            .execute(&query, &catalog, &mut rng)
            .expect("partial loss degrades instead of failing");
        let (coverage, widened, lost_blocks) = match &r.degradation {
            Some(d) => (d.coverage, d.widened_half_width, d.failures.len()),
            None => (1.0, 0.2, 0),
        };
        let err = (r.value - exact).abs();
        report.row(vec![
            "quality".to_string(),
            format!("loss={loss}"),
            format!("coverage={}", fmt(coverage, 3)),
            format!("widened={}", fmt(widened, 4)),
            format!("abs_err={}", fmt(err, 4)),
        ]);
        rows.push(Json::obj(vec![
            ("loss_rate", Json::num(loss)),
            ("lost_blocks", Json::num(lost_blocks as f64)),
            ("coverage", Json::num(coverage)),
            ("widened_half_width", Json::num(widened)),
            ("abs_error", Json::num(err)),
        ]));
    }
    Json::Arr(rows)
}

/// Schema contract for `BENCH_faults.json` (checked by CI's `--smoke`
/// run and on every write).
fn validate_artifact(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    for path in [
        "bench",
        "mode",
        "sections.overhead.overhead_frac",
        "sections.overhead.bit_identical",
        "sections.recovery",
        "sections.quality",
    ] {
        if get(&doc, path).is_none() {
            return Err(format!("missing required key {path:?}"));
        }
    }
    for (section, fields) in [
        ("sections.recovery", &["transient_rate", "median_ms"][..]),
        (
            "sections.quality",
            &["loss_rate", "coverage", "widened_half_width", "abs_error"][..],
        ),
    ] {
        match get(&doc, section) {
            Some(Json::Arr(items)) if !items.is_empty() => {
                for item in items {
                    for field in fields {
                        if get(item, field).is_none() {
                            return Err(format!("{section} row lacks the {field:?} field"));
                        }
                    }
                }
            }
            _ => return Err(format!("{section} is not a non-empty array")),
        }
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    println!(
        "M7 (faults): hook overhead, transient recovery, loss degradation, mode = {}",
        scale.mode
    );

    let mut report = Report::new("exp_faults", &["section", "a", "b", "c", "d"]);
    let overhead = overhead_section(&scale, &mut report);
    let recovery = recovery_section(&scale, &mut report);
    let quality = quality_section(&scale, &mut report);
    report.finish();

    let doc = Json::obj(vec![
        ("bench", Json::str("exp_faults")),
        ("mode", Json::str(scale.mode)),
        (
            "sections",
            Json::obj(vec![
                ("overhead", overhead),
                ("recovery", recovery),
                ("quality", quality),
            ]),
        ),
    ]);
    let text = doc.render();
    validate_artifact(&text).expect("emitted JSON must satisfy the schema");
    // Smoke results land under target/experiments — only full-scale
    // runs may touch the committed repo-root perf artifact.
    let path = if smoke {
        isla_bench::experiments_dir().join("BENCH_faults.smoke.json")
    } else {
        bench_json_path("faults")
    };
    std::fs::write(&path, &text).expect("write BENCH_faults.json");
    println!("  [written {}]", path.display());

    let on_disk = std::fs::read_to_string(&path).expect("re-read artifact");
    validate_artifact(&on_disk).expect("on-disk JSON must satisfy the schema");

    if smoke {
        println!("smoke mode: schema validated");
    }
}
