//! A3 — ablation of the leverage degree α: fixed values versus the
//! iterative modulation (§IV-B: "Using a fixed α means no modulation
//! ability over the leverage effects, and a bad α leads to a low
//! accuracy").
//!
//! Per seed: one block of N(100, 20²), a noisy sketch, 15k samples.
//! The fixed arms evaluate μ̂ = k·α + c at α ∈ {0, 0.1, 0.5}; the
//! iterated arm runs the full modulation.

use isla_bench::{fmt, mean_abs_error, Report};
use isla_core::accumulate::SampleAccumulator;
use isla_core::{determine_q, iteration_phase, DataBoundaries, IslaConfig, LinearEstimator};
use isla_datagen::normal_values;
use isla_stats::distributions::{Distribution, Normal};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MU: f64 = 100.0;
const SIGMA: f64 = 20.0;
const SEEDS: u64 = 40;

fn main() {
    println!("A3: fixed α vs iterated modulation; e=0.1, {SEEDS} seeds");
    let config = IslaConfig::builder().precision(0.1).build().unwrap();
    let values = normal_values(MU, SIGMA, 400_000, 2100);
    let sketch_noise = Normal::new(0.0, 0.1); // ≈ tₑ·e/z at the defaults

    let fixed_alphas = [0.0, 0.1, 0.5];
    let mut fixed_answers: Vec<Vec<f64>> = vec![Vec::new(); fixed_alphas.len()];
    let mut iterated_answers = Vec::new();
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let sketch0 = MU + sketch_noise.sample(&mut rng);
        let boundaries = DataBoundaries::new(sketch0, SIGMA, config.p1, config.p2);
        let mut acc = SampleAccumulator::new(boundaries);
        for _ in 0..15_000 {
            let idx = rand::Rng::random_range(&mut rng, 0..values.len() as u64);
            acc.offer(values[idx as usize]);
        }
        let dev = acc.dev().expect("L region populated");
        let q = determine_q(dev, &config);
        let est = LinearEstimator::from_moments(acc.param_s(), acc.param_l(), q)
            .expect("estimator defined");
        for (answers, &alpha) in fixed_answers.iter_mut().zip(&fixed_alphas) {
            answers.push(est.evaluate(alpha));
        }
        iterated_answers.push(iteration_phase(&acc, sketch0, &config).answer);
    }

    let mut report = Report::new("exp_ablation_alpha", &["strategy", "mean |err|"]);
    for (answers, &alpha) in fixed_answers.iter().zip(&fixed_alphas) {
        report.row(vec![
            format!("fixed α={alpha}"),
            fmt(mean_abs_error(answers, MU), 4),
        ]);
    }
    let iterated_err = mean_abs_error(&iterated_answers, MU);
    report.row(vec!["iterated (ISLA)".to_string(), fmt(iterated_err, 4)]);
    report.finish();

    // Shape: the iteration must beat the *bad* fixed α (0.5) clearly and
    // not lose to the best fixed α.
    let worst_fixed = fixed_answers
        .iter()
        .map(|a| mean_abs_error(a, MU))
        .fold(f64::NEG_INFINITY, f64::max);
    let best_fixed = fixed_answers
        .iter()
        .map(|a| mean_abs_error(a, MU))
        .fold(f64::INFINITY, f64::min);
    assert!(
        iterated_err < worst_fixed,
        "iteration ({iterated_err:.4}) must beat the worst fixed α ({worst_fixed:.4})"
    );
    assert!(
        iterated_err <= best_fixed * 1.5,
        "iteration ({iterated_err:.4}) should stay near the best fixed α ({best_fixed:.4})"
    );
    println!("shape check: a bad fixed α costs accuracy; the iteration adapts (§IV-B).");
}
