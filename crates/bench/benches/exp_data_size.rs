//! E1 — §VIII-A "Varying Data Size": 10⁸…10¹² rows of N(100, 20²).
//!
//! The paper stores these as 100 MB–1 TB text files; we use virtual
//! generator blocks (substitution documented in DESIGN.md) since the
//! sample size `m = z²σ²/e²` is independent of M — which is exactly what
//! this experiment demonstrates.

use isla_bench::{fmt, paper, Report};
use isla_core::{IslaAggregator, IslaConfig};
use isla_datagen::synthetic::virtual_normal_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E1 (§VIII-A): varying data size, e=0.1, β=0.95, b=10, N(100,20²)");
    let config = IslaConfig::builder().precision(0.1).build().unwrap();
    let aggregator = IslaAggregator::new(config).unwrap();

    let mut report = Report::new(
        "exp_data_size",
        &[
            "rows",
            "estimate",
            "abs error",
            "samples drawn",
            "paper answer",
        ],
    );
    for (i, &(rows, paper_answer)) in paper::DATA_SIZE.iter().enumerate() {
        let ds = virtual_normal_dataset(100.0, 20.0, rows as u64, 10, 500 + i as u64);
        let mut rng = StdRng::seed_from_u64(i as u64);
        let result = aggregator.aggregate(&ds.blocks, &mut rng).unwrap();
        report.row(vec![
            format!("{:.0e}", rows),
            fmt(result.estimate, 4),
            fmt((result.estimate - 100.0).abs(), 4),
            result.total_samples_with_pilots().to_string(),
            fmt(paper_answer, 4),
        ]);
        assert!(
            (result.estimate - 100.0).abs() < 0.2,
            "data size {rows:.0e}: estimate {} outside the paper's envelope",
            result.estimate
        );
    }
    report.finish();
    println!("shape check: answers and sample counts are flat in M — as in the paper.");
}
