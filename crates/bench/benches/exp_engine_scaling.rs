//! M2 — engine scaling: sequential vs pooled block scheduling.
//!
//! Not a paper experiment: this bench characterizes the engine layer
//! introduced for the production roadmap. One `QueryPlan` is prepared
//! per run; the same per-block workload then executes on the
//! `SequentialScheduler` and on `PooledScheduler`s with 1, 2, 4 and 8
//! workers. Because per-block seeds are fixed before execution, every
//! row of the table reports the *identical* estimate — the only thing
//! that changes is wall-clock time.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use isla_bench::{fmt, Report};
use isla_core::engine::{self, BlockScheduler, PooledScheduler, RateSpec, SequentialScheduler};
use isla_core::IslaConfig;
use isla_datagen::normal_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 4_000_000;
const BLOCKS: usize = 32;
const PRECISION: f64 = 0.05;
const SEED: u64 = 2_000;
const RUNS: usize = 7;

fn median_ms(data: &isla_datagen::Dataset, scheduler: &dyn BlockScheduler) -> (f64, f64, u64) {
    let config = IslaConfig::builder().precision(PRECISION).build().unwrap();
    let mut times = Vec::with_capacity(RUNS);
    let mut estimate = 0.0;
    let mut samples = 0;
    for _ in 0..RUNS {
        let mut rng = StdRng::seed_from_u64(SEED);
        let start = Instant::now();
        let out = engine::run(
            &data.blocks,
            &config,
            RateSpec::Derived,
            scheduler,
            &mut rng,
        )
        .expect("engine run succeeds");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        estimate = out.estimate;
        samples = out.total_samples;
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], estimate, samples)
}

fn bench_engine_scaling(c: &mut Criterion) {
    println!(
        "M2 (engine): sequential vs pooled scheduling, {ROWS} rows, {BLOCKS} blocks, e = {PRECISION}"
    );
    let ds = normal_dataset(100.0, 20.0, ROWS, BLOCKS, SEED);
    let config = IslaConfig::builder().precision(PRECISION).build().unwrap();

    let mut group = c.benchmark_group("engine_scaling");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(SEED);
            engine::run(
                &ds.blocks,
                &config,
                RateSpec::Derived,
                &SequentialScheduler,
                &mut rng,
            )
            .expect("engine run succeeds")
        })
    });
    for workers in [2usize, 8] {
        let scheduler = PooledScheduler::new(workers).unwrap();
        group.bench_function(&format!("pooled/{workers}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(SEED);
                engine::run(&ds.blocks, &config, RateSpec::Derived, &scheduler, &mut rng)
                    .expect("engine run succeeds")
            })
        });
    }
    group.finish();

    let mut report = Report::new(
        "exp_engine_scaling",
        &[
            "scheduler",
            "workers",
            "median ms",
            "speedup",
            "estimate",
            "samples",
        ],
    );
    let (base_ms, base_estimate, base_samples) = median_ms(&ds, &SequentialScheduler);
    report.row(vec![
        "sequential".to_string(),
        "1".to_string(),
        fmt(base_ms, 2),
        fmt(1.0, 2),
        fmt(base_estimate, 4),
        base_samples.to_string(),
    ]);
    for workers in [1usize, 2, 4, 8] {
        let scheduler = PooledScheduler::new(workers).unwrap();
        let (ms, estimate, samples) = median_ms(&ds, &scheduler);
        assert_eq!(
            estimate, base_estimate,
            "scheduling must never change the answer"
        );
        assert_eq!(samples, base_samples);
        report.row(vec![
            "pooled".to_string(),
            workers.to_string(),
            fmt(ms, 2),
            fmt(base_ms / ms, 2),
            fmt(estimate, 4),
            samples.to_string(),
        ]);
    }
    report.finish();
    println!(
        "every row reports the identical estimate {base_estimate:.4}: the pool \
         changes wall-clock time only, never the answer."
    );
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
