//! E5 — Fig. 6(d) "Varying data boundaries": p1 ∈ {0.25 … 1.5} with
//! p2 = 2. The paper's finding: p1 = 0.5/0.75 work best; large p1
//! (1.25, 1.5) diverges because the S/L windows stop representing the
//! distribution and fewer samples participate.

use isla_bench::{fmt, mean_abs_error, Report};
use isla_core::{IslaAggregator, IslaConfig};
use isla_datagen::synthetic::virtual_normal_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E5 (Fig. 6d): varying p1 (p2=2), 5 datasets, e=0.1, N(100,20²)");
    let p1_values = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5];
    let datasets: Vec<_> = (0..5)
        .map(|i| virtual_normal_dataset(100.0, 20.0, 10_000_000, 10, 900 + i))
        .collect();

    let mut report = Report::new(
        "exp_fig6d_boundaries",
        &["p1", "ds1", "ds2", "ds3", "ds4", "ds5", "mean |err|"],
    );
    let mut errors = Vec::new();
    for &p1 in &p1_values {
        let config = IslaConfig::builder().precision(0.1).p1(p1).build().unwrap();
        let aggregator = IslaAggregator::new(config).unwrap();
        let estimates: Vec<f64> = datasets
            .iter()
            .enumerate()
            .map(|(i, ds)| {
                let mut rng = StdRng::seed_from_u64(4000 + i as u64);
                aggregator.aggregate(&ds.blocks, &mut rng).unwrap().estimate
            })
            .collect();
        let err = mean_abs_error(&estimates, 100.0);
        errors.push((p1, err));
        let mut row = vec![fmt(p1, 2)];
        row.extend(estimates.iter().map(|&v| fmt(v, 4)));
        row.push(fmt(err, 4));
        report.row(row);
    }
    report.finish();
    // Shape: the recommended p1 ∈ {0.5, 0.75} must not lose to the
    // extreme settings.
    let err_at = |p: f64| errors.iter().find(|(q, _)| *q == p).unwrap().1;
    let recommended = err_at(0.5).min(err_at(0.75));
    let extreme = err_at(1.25).max(err_at(1.5));
    assert!(
        recommended <= extreme + 0.02,
        "recommended p1 should not lose: rec {recommended:.4} vs extreme {extreme:.4}"
    );
    println!("shape check: p1 = 0.5/0.75 at least as good as 1.25/1.5 (Fig. 6d).");
}
