//! M6 — incremental ingest: sealed-block appends that merge into
//! cached sampling state instead of invalidating it.
//!
//! Not a paper experiment: the paper's datasets are static, this bench
//! measures the ingest path grown around the scheme. One table takes a
//! stream of append batches through `QueryService::ingest`; after every
//! batch the same query mix runs against
//!
//! 1. **incremental** — the sealed blocks merged their sketches,
//!    selections, and epoch marks into the caches, so the post-ingest
//!    pre-estimate resumes the cached fold and pilots only the new
//!    epoch's blocks;
//! 2. **recompute** — the strawman that calls `invalidate_table` after
//!    every batch, paying a cold fold over the entire history each
//!    round (the pre-tentpole behavior).
//!
//! Both services run the same pinned pilot seed and per-round query
//! seeds, so every answer must be **bit-identical** across the two —
//! asserted every round. A third section drives a [`ContinuousQuery`]
//! standing AVG over the same appends, asserting its O(new blocks)
//! updates end bit-identical to a from-scratch registration at the
//! final epoch.
//!
//! Results print as a table (CSV under `target/experiments/`) and are
//! written machine-readable to `BENCH_ingest.json` at the workspace
//! root. The full run asserts the final-batch speedup is ≥ 5×;
//! `--smoke` runs a seconds-scale configuration and validates the
//! emitted JSON schema (the CI hook) without the timing assertion.

use std::time::Instant;

use isla_bench::json::{get, parse, Json};
use isla_bench::{bench_json_path, fmt, Report};
use isla_core::engine::RowSpec;
use isla_core::{ContinuousQuery, IslaConfig};
use isla_datagen::normal_values;
use isla_query::{QueryService, ServiceConfig, Table};
use isla_storage::BlockSet;

const SEED: u64 = 6_000;

/// The post-ingest query mix: scalar pre-estimates over two columns
/// plus a filtered row-model shape, so both the scalar and the row
/// epoch-fold paths are on the measured path.
const SHAPES: [&str; 3] = [
    "SELECT AVG(distance) FROM trips WITH PRECISION 1.0",
    "SELECT SUM(fare) FROM trips WITH PRECISION 2.5",
    "SELECT AVG(fare) FROM trips WHERE distance > 100 WITH PRECISION 2.5",
];

/// One run's scale knobs (full vs `--smoke`).
struct Scale {
    mode: &'static str,
    base_rows: usize,
    base_blocks: usize,
    batches: usize,
    batch_rows: usize,
    rows_per_block: usize,
}

impl Scale {
    fn full() -> Self {
        Self {
            mode: "full",
            base_rows: 2_000_000,
            base_blocks: 32,
            batches: 24,
            batch_rows: 20_000,
            rows_per_block: 8_192,
        }
    }

    fn smoke() -> Self {
        Self {
            mode: "smoke",
            base_rows: 60_000,
            base_blocks: 8,
            batches: 3,
            batch_rows: 2_000,
            rows_per_block: 1_000,
        }
    }
}

fn build_service(scale: &Scale) -> QueryService {
    let service = QueryService::new(ServiceConfig {
        pilot_seed: SEED,
        ingest_rows_per_block: scale.rows_per_block,
        ..ServiceConfig::default()
    });
    let distance = normal_values(100.0, 20.0, scale.base_rows, SEED);
    let fare: Vec<f64> = distance.iter().map(|v| v * 2.5 + 3.0).collect();
    service.register_table(
        "trips",
        Table::new(vec![
            (
                "distance",
                BlockSet::from_values(distance, scale.base_blocks),
            ),
            ("fare", BlockSet::from_values(fare, scale.base_blocks)),
        ]),
    );
    service
}

/// One append batch: `batch_rows` two-column rows, deterministic per
/// round.
fn batch(scale: &Scale, round: usize) -> Vec<Vec<f64>> {
    let distance = normal_values(100.0, 20.0, scale.batch_rows, SEED + 100 + round as u64);
    distance
        .into_iter()
        .map(|d| vec![d, d * 2.5 + 3.0])
        .collect()
}

/// Runs the full shape mix once from `seed_base` and returns (total
/// seconds, answer bits per shape).
fn run_mix(service: &QueryService, seed_base: u64) -> (f64, Vec<u64>) {
    let mut bits = Vec::with_capacity(SHAPES.len());
    let start = Instant::now();
    for (i, sql) in SHAPES.iter().enumerate() {
        let result = service
            .query("bench", sql, seed_base + i as u64)
            .expect("bench query succeeds");
        bits.push(result.value.to_bits());
    }
    (start.elapsed().as_secs_f64(), bits)
}

struct RoundResult {
    rows_total: u64,
    epoch: u64,
    ingest_ms: f64,
    incremental_ms: f64,
    recompute_ms: f64,
    speedup: f64,
}

/// The head-to-head sweep: one batch per round into both services, the
/// strawman invalidating everything, then the same query mix on each.
fn sweep(
    scale: &Scale,
    incremental: &QueryService,
    recompute: &QueryService,
    report: &mut Report,
) -> Vec<RoundResult> {
    // Warm both so round 1 measures steady-state serving, not the
    // first-ever pilot of a cold process.
    run_mix(incremental, SEED + 90_000);
    run_mix(recompute, SEED + 90_000);
    let mut rounds = Vec::with_capacity(scale.batches);
    for round in 0..scale.batches {
        let rows = batch(scale, round);
        let t = Instant::now();
        incremental
            .ingest("feeder", "trips", &rows)
            .expect("incremental ingest");
        let ingest_ms = t.elapsed().as_secs_f64() * 1e3;
        recompute
            .ingest("feeder", "trips", &rows)
            .expect("recompute ingest");
        recompute.invalidate_table("trips");
        let seed_base = SEED + (round * SHAPES.len()) as u64;
        let (inc_s, inc_bits) = run_mix(incremental, seed_base);
        let (rec_s, rec_bits) = run_mix(recompute, seed_base);
        assert_eq!(
            inc_bits, rec_bits,
            "round {round}: incremental answers must be bit-identical to recompute"
        );
        let table = incremental.table("trips").expect("table registered");
        let result = RoundResult {
            rows_total: table.rows(),
            epoch: table.data().epoch(),
            ingest_ms,
            incremental_ms: inc_s * 1e3,
            recompute_ms: rec_s * 1e3,
            speedup: rec_s / inc_s,
        };
        report.row(vec![
            "rounds".to_string(),
            round.to_string(),
            result.rows_total.to_string(),
            fmt(result.incremental_ms, 3),
            fmt(result.recompute_ms, 3),
            fmt(result.speedup, 2),
        ]);
        rounds.push(result);
    }
    rounds
}

/// The standing-query section: a `ContinuousQuery` AVG(distance) fed
/// the same appends, updated in O(new blocks) per round, must end
/// bit-identical to a twin registered at the same base epoch that
/// absorbs the whole append history in one final update (the plan is
/// pinned at registration, so stepped and one-shot absorption must
/// agree bit for bit).
fn continuous_section(
    scale: &Scale,
    service: &QueryService,
    report: &mut Report,
) -> (Json, Vec<Json>) {
    let config = IslaConfig::builder()
        .precision(1.0)
        .build()
        .expect("bench config");
    let base = service.table("trips").expect("table registered");
    let mut standing = ContinuousQuery::register(base.data(), &config, RowSpec::column(0), SEED)
        .expect("register standing query");
    let mut oneshot = standing.clone();
    let mut update_rows = Vec::with_capacity(scale.batches);
    for round in 0..scale.batches {
        let rows = batch(scale, round);
        service
            .ingest("feeder", "trips", &rows)
            .expect("continuous ingest");
        let data = service.table("trips").expect("table registered");
        let t = Instant::now();
        let absorbed = standing.update(data.data()).expect("standing update");
        let update_ms = t.elapsed().as_secs_f64() * 1e3;
        update_rows.push(Json::obj(vec![
            ("round", Json::num(round as f64)),
            ("blocks_absorbed", Json::num(absorbed as f64)),
            ("update_ms", Json::num(update_ms)),
        ]));
        report.row(vec![
            "continuous".to_string(),
            round.to_string(),
            format!("blocks={absorbed}"),
            fmt(update_ms, 3),
            String::new(),
            String::new(),
        ]);
    }
    let final_table = service.table("trips").expect("table registered");
    oneshot
        .update(final_table.data())
        .expect("one-shot absorption of the whole history");
    let stepped = standing.answer().expect("stepped answer");
    let absorbed = oneshot.answer().expect("one-shot answer");
    assert_eq!(
        stepped.avg.to_bits(),
        absorbed.avg.to_bits(),
        "stepped updates must equal one-shot absorption of the same appends"
    );
    let summary = Json::obj(vec![
        ("rows_seen", Json::num(standing.rows_seen() as f64)),
        ("bit_identical", Json::Bool(true)),
    ]);
    (summary, update_rows)
}

/// Schema contract for `BENCH_ingest.json` (checked by CI's `--smoke`
/// run and on every write).
fn validate_artifact(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    for path in [
        "bench",
        "mode",
        "sections.rounds",
        "sections.summary.final_speedup",
        "sections.summary.bit_identical",
        "sections.summary.delta_folds",
        "sections.summary.recompute_cold_folds",
        "sections.continuous.bit_identical",
    ] {
        if get(&doc, path).is_none() {
            return Err(format!("missing required key {path:?}"));
        }
    }
    match get(&doc, "sections.rounds") {
        Some(Json::Arr(items)) if !items.is_empty() => {
            for item in items {
                for field in [
                    "round",
                    "rows_total",
                    "epoch",
                    "ingest_ms",
                    "incremental_ms",
                    "recompute_ms",
                    "speedup",
                ] {
                    if get(item, field).is_none() {
                        return Err(format!("rounds row lacks the {field:?} field"));
                    }
                }
            }
        }
        _ => return Err("sections.rounds is not a non-empty array".to_string()),
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    println!(
        "M6 (ingest): {} append batches of {} rows over {} base rows, mode = {}",
        scale.batches, scale.batch_rows, scale.base_rows, scale.mode
    );

    let mut report = Report::new("exp_ingest", &["section", "round", "a", "b", "c", "d"]);
    let incremental = build_service(&scale);
    let recompute = build_service(&scale);
    let rounds = sweep(&scale, &incremental, &recompute, &mut report);
    let continuous_service = build_service(&scale);
    let (continuous, continuous_rounds) =
        continuous_section(&scale, &continuous_service, &mut report);
    report.finish();

    let final_speedup = rounds.last().expect("at least one round").speedup;
    let epoch_stats = incremental.epoch_cache_stats();
    let strawman_stats = recompute.epoch_cache_stats();
    if !smoke {
        assert!(
            final_speedup >= 5.0,
            "incremental ingest must serve the final batch ≥5× faster than \
             invalidate-and-recompute (measured {final_speedup:.2}×)"
        );
    }

    let round_rows: Vec<Json> = rounds
        .iter()
        .enumerate()
        .map(|(i, r)| {
            Json::obj(vec![
                ("round", Json::num(i as f64)),
                ("rows_total", Json::num(r.rows_total as f64)),
                ("epoch", Json::num(r.epoch as f64)),
                ("ingest_ms", Json::num(r.ingest_ms)),
                ("incremental_ms", Json::num(r.incremental_ms)),
                ("recompute_ms", Json::num(r.recompute_ms)),
                ("speedup", Json::num(r.speedup)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("bench", Json::str("exp_ingest")),
        ("mode", Json::str(scale.mode)),
        (
            "sections",
            Json::obj(vec![
                ("rounds", Json::Arr(round_rows)),
                (
                    "summary",
                    Json::obj(vec![
                        ("final_speedup", Json::num(final_speedup)),
                        // Asserted for every shape in every round before
                        // this document is ever written.
                        ("bit_identical", Json::Bool(true)),
                        ("delta_folds", Json::num(epoch_stats.delta_folds as f64)),
                        (
                            "recompute_cold_folds",
                            Json::num(strawman_stats.cold_folds as f64),
                        ),
                    ]),
                ),
                (
                    "continuous",
                    Json::obj(vec![
                        ("rounds", Json::Arr(continuous_rounds)),
                        (
                            "bit_identical",
                            get(&continuous, "bit_identical")
                                .cloned()
                                .unwrap_or(Json::Bool(false)),
                        ),
                        (
                            "rows_seen",
                            get(&continuous, "rows_seen")
                                .cloned()
                                .unwrap_or(Json::num(0.0)),
                        ),
                    ]),
                ),
            ]),
        ),
    ]);
    let text = doc.render();
    validate_artifact(&text).expect("emitted JSON must satisfy the schema");
    // Smoke results land under target/experiments — only full-scale
    // runs may touch the committed repo-root perf artifact.
    let path = if smoke {
        isla_bench::experiments_dir().join("BENCH_ingest.smoke.json")
    } else {
        bench_json_path("ingest")
    };
    std::fs::write(&path, &text).expect("write BENCH_ingest.json");
    println!("  [written {}]", path.display());

    let on_disk = std::fs::read_to_string(&path).expect("re-read artifact");
    validate_artifact(&on_disk).expect("on-disk JSON must satisfy the schema");

    println!(
        "final speedup {:.2}x (delta folds {}, strawman cold folds {})",
        final_speedup, epoch_stats.delta_folds, strawman_stats.cold_folds
    );
    if smoke {
        println!("smoke mode: schema validated");
    }
}
