//! M5 — serving throughput: the multi-tenant `QueryService` under
//! concurrent load.
//!
//! Not a paper experiment: the paper's interface is one interactive
//! session, this bench measures the serving layer grown around it. One
//! service (shared pre-estimation cache, per-table selection/sketch
//! caches, bounded admission) is stormed by 1 / 8 / 64 / 256 concurrent
//! client streams, every stream drawing from the same small mix of
//! query shapes — the dashboard workload, where repeats dominate. Three
//! sections:
//!
//! 1. **latency** — per-stream-count p50/p99 query latency, aggregate
//!    QPS, and the `Overloaded` rejection count (zero at the bench's
//!    queue depth — rejections are a correctness signal here, not a
//!    tuning goal);
//! 2. **cache** — shared pre-estimation cache hit rate over the whole
//!    storm, plus the per-table selection/sketch cache counters;
//! 3. **two_sessions** — the acceptance demonstration: a second tenant
//!    issuing the same shape hits the cache another tenant warmed and
//!    skips the pilot phase entirely, with the bit-identical answer.
//!
//! Results print as a table (CSV under `target/experiments/`) and are
//! written machine-readable to `BENCH_serving.json` at the workspace
//! root. `--smoke` runs a seconds-scale configuration and validates the
//! emitted JSON schema (the CI hook).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use isla_bench::json::{get, parse, Json};
use isla_bench::{bench_json_path, fmt, Report};
use isla_datagen::normal_values;
use isla_query::{QueryError, QueryService, ServiceConfig, Table};
use isla_storage::{BlockSet, ColumnDef, RowsBlock, Schema};

const SEED: u64 = 5_000;

/// The workload mix every stream cycles through: scalar, filtered,
/// grouped, and extreme shapes over two tables — nine distinct cache
/// entries across all three cache layers, the "dashboard refresh"
/// pattern. The `MAX … METHOD EXACT` shape exercises the *selection*
/// cache (compiled `WHERE` match lists), which the ISLA row path does
/// not touch.
const SHAPES: [&str; 9] = [
    "SELECT AVG(distance) FROM trips WITH PRECISION 0.5",
    "SELECT AVG(distance) FROM trips WITH PRECISION 0.2",
    "SELECT SUM(fare) FROM trips WITH PRECISION 0.5",
    "SELECT SUM(fare) FROM trips WITH PRECISION 0.2",
    "SELECT AVG(amount) FROM sales WHERE margin > 25 WITH PRECISION 0.5",
    "SELECT AVG(amount) FROM sales WHERE margin > 25 WITH PRECISION 0.3",
    "SELECT AVG(amount) FROM sales GROUP BY store WITH PRECISION 0.5",
    "SELECT AVG(amount) FROM sales GROUP BY store WITH PRECISION 0.3",
    "SELECT MAX(amount) FROM sales WHERE margin > 25 METHOD EXACT",
];

/// One run's scale knobs (full vs `--smoke`).
struct Scale {
    mode: &'static str,
    streams: Vec<usize>,
    queries_per_stream: usize,
    trips_rows: usize,
    sales_rows: usize,
}

impl Scale {
    fn full() -> Self {
        Self {
            mode: "full",
            streams: vec![1, 8, 64, 256],
            queries_per_stream: 32,
            trips_rows: 1_000_000,
            sales_rows: 500_000,
        }
    }

    fn smoke() -> Self {
        Self {
            mode: "smoke",
            streams: vec![1, 4],
            // One full cycle of the shape mix, so every cache layer
            // (including the MAX shape's selection cache) sees traffic.
            queries_per_stream: 9,
            trips_rows: 50_000,
            sales_rows: 30_000,
        }
    }
}

fn build_service(scale: &Scale) -> QueryService {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let service = QueryService::new(ServiceConfig {
        workers,
        max_concurrent: workers,
        // Deep enough that the 256-stream storm queues instead of
        // rejecting: this bench measures latency under load, and any
        // `Overloaded` it does see is reported as a signal.
        queue_depth: 1_024,
        sample_budget: None,
        pilot_seed: SEED,
        ..ServiceConfig::default()
    });
    let distance = normal_values(100.0, 20.0, scale.trips_rows, SEED);
    let fare: Vec<f64> = distance.iter().map(|v| v * 2.5 + 3.0).collect();
    service.register_table(
        "trips",
        Table::new(vec![
            ("distance", BlockSet::from_values(distance, 16)),
            ("fare", BlockSet::from_values(fare, 16)),
        ]),
    );
    let n = scale.sales_rows;
    let x = normal_values(50.0, 10.0, n, SEED + 1);
    let noise = normal_values(0.0, 5.0, n, SEED + 2);
    let store: Vec<f64> = (0..n).map(|i| f64::from(u32::from(i % 3 == 0))).collect();
    let margin: Vec<f64> = x.iter().zip(&noise).map(|(v, e)| 0.5 * v + e).collect();
    service.register_table(
        "sales",
        Table::from_rows(
            Schema::new(vec![
                ColumnDef::float("amount"),
                ColumnDef::float("margin"),
                ColumnDef::categorical("store"),
            ]),
            RowsBlock::split(vec![x, margin, store], 16),
        ),
    );
    service
}

/// Storms the service with `streams` concurrent clients, each issuing
/// `queries_per_stream` queries round-robin over the shape mix.
/// Returns (sorted latencies in seconds, wall seconds, overloaded
/// count).
fn storm(
    service: &QueryService,
    streams: usize,
    queries_per_stream: usize,
) -> (Vec<f64>, f64, u64) {
    let barrier = Barrier::new(streams);
    let overloaded = AtomicU64::new(0);
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..streams)
            .map(|stream| {
                let client = service.client(format!("stream-{stream}"));
                let barrier = &barrier;
                let overloaded = &overloaded;
                scope.spawn(move || {
                    barrier.wait();
                    let mut times = Vec::with_capacity(queries_per_stream);
                    for i in 0..queries_per_stream {
                        let sql = SHAPES[(stream + i) % SHAPES.len()];
                        let seed = (stream * 1_000 + i) as u64;
                        let t = Instant::now();
                        match client.query(sql, seed) {
                            Ok(_) => times.push(t.elapsed().as_secs_f64()),
                            Err(QueryError::Overloaded { .. }) => {
                                overloaded.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("serving storm query failed: {e}"),
                        }
                    }
                    times
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stream thread panicked"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    (latencies, wall, overloaded.load(Ordering::Relaxed))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn sweep_latency(scale: &Scale, service: &QueryService, report: &mut Report) -> Vec<Json> {
    let mut rows = Vec::new();
    for &streams in &scale.streams {
        let (latencies, wall, overloaded) = storm(service, streams, scale.queries_per_stream);
        let completed = latencies.len();
        let p50 = percentile(&latencies, 0.50) * 1e3;
        let p99 = percentile(&latencies, 0.99) * 1e3;
        let qps = completed as f64 / wall;
        report.row(vec![
            "latency".to_string(),
            streams.to_string(),
            fmt(p50, 3),
            fmt(p99, 3),
            fmt(qps, 1),
            overloaded.to_string(),
        ]);
        rows.push(Json::obj(vec![
            ("streams", Json::num(streams as f64)),
            ("completed", Json::num(completed as f64)),
            ("p50_ms", Json::num(p50)),
            ("p99_ms", Json::num(p99)),
            ("qps", Json::num(qps)),
            ("overloaded", Json::num(overloaded as f64)),
        ]));
    }
    rows
}

fn cache_section(service: &QueryService, report: &mut Report) -> Json {
    let pre = service.cache_stats();
    let hit_rate = if pre.hits + pre.misses > 0 {
        pre.hits as f64 / (pre.hits + pre.misses) as f64
    } else {
        0.0
    };
    let mut selection_hits = 0u64;
    let mut selection_builds = 0u64;
    let mut sketch_hits = 0u64;
    let mut sketch_inserted = 0u64;
    let mut sketch_raced = 0u64;
    for table in ["trips", "sales"] {
        let t = service
            .table_cache_stats(table)
            .expect("bench tables are registered");
        selection_hits += t.selection_hits;
        selection_builds += t.selection_builds;
        sketch_hits += t.sketch_hits;
        sketch_inserted += t.sketch_inserted;
        sketch_raced += t.sketch_raced;
    }
    report.row(vec![
        "cache".to_string(),
        format!("hits={}", pre.hits),
        format!("misses={}", pre.misses),
        format!("hit_rate={}", fmt(hit_rate, 4)),
        format!("sel_builds={selection_builds}"),
        format!("sk_raced={sketch_raced}"),
    ]);
    Json::obj(vec![
        ("pre_estimate_hits", Json::num(pre.hits as f64)),
        ("pre_estimate_misses", Json::num(pre.misses as f64)),
        ("pre_estimate_hit_rate", Json::num(hit_rate)),
        ("selection_hits", Json::num(selection_hits as f64)),
        ("selection_builds", Json::num(selection_builds as f64)),
        ("sketch_hits", Json::num(sketch_hits as f64)),
        ("sketch_inserted", Json::num(sketch_inserted as f64)),
        ("sketch_raced", Json::num(sketch_raced as f64)),
    ])
}

/// The acceptance demonstration on a *fresh* service: tenant A pays for
/// the pilots, tenant B repeats the shape and skips them.
fn two_sessions_section(scale: &Scale, report: &mut Report) -> Json {
    let service = build_service(scale);
    let sql = SHAPES[0];
    let first = service
        .client("tenant-a")
        .query(sql, 7)
        .expect("first session query");
    let second = service
        .client("tenant-b")
        .query(sql, 7)
        .expect("second session query");
    let stats = service.cache_stats();
    let first_samples = first.samples_used.unwrap_or(0);
    let second_samples = second.samples_used.unwrap_or(0);
    assert_eq!(stats.hits, 1, "the second session must hit the cache");
    assert!(
        second_samples < first_samples,
        "a hit skips the pilot rows ({second_samples} vs {first_samples})"
    );
    assert_eq!(
        first.value.to_bits(),
        second.value.to_bits(),
        "key-seeded pilots keep hit and miss answers bit-identical"
    );
    report.row(vec![
        "two_sessions".to_string(),
        format!("first_samples={first_samples}"),
        format!("second_samples={second_samples}"),
        "pilot_skipped=true".to_string(),
        "bit_identical=true".to_string(),
        String::new(),
    ]);
    Json::obj(vec![
        ("first_samples", Json::num(first_samples as f64)),
        ("second_samples", Json::num(second_samples as f64)),
        ("pilot_skipped", Json::Bool(true)),
        ("bit_identical", Json::Bool(true)),
    ])
}

/// Schema contract for `BENCH_serving.json` (checked by CI's `--smoke`
/// run and on every write).
fn validate_artifact(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    for path in [
        "bench",
        "mode",
        "sections.latency",
        "sections.cache.pre_estimate_hit_rate",
        "sections.two_sessions.pilot_skipped",
        "sections.two_sessions.bit_identical",
    ] {
        if get(&doc, path).is_none() {
            return Err(format!("missing required key {path:?}"));
        }
    }
    match get(&doc, "sections.latency") {
        Some(Json::Arr(items)) if !items.is_empty() => {
            for item in items {
                for field in ["streams", "p50_ms", "p99_ms", "qps", "overloaded"] {
                    if get(item, field).is_none() {
                        return Err(format!("latency row lacks the {field:?} field"));
                    }
                }
            }
        }
        _ => return Err("sections.latency is not a non-empty array".to_string()),
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { Scale::smoke() } else { Scale::full() };
    println!(
        "M5 (serving): QueryService under {} concurrent-stream sweeps, mode = {}",
        scale.streams.len(),
        scale.mode
    );

    let mut report = Report::new("exp_serving", &["section", "a", "b", "c", "d", "e"]);
    let service = build_service(&scale);
    let latency_rows = sweep_latency(&scale, &service, &mut report);
    let cache = cache_section(&service, &mut report);
    let two_sessions = two_sessions_section(&scale, &mut report);
    report.finish();

    let doc = Json::obj(vec![
        ("bench", Json::str("exp_serving")),
        ("mode", Json::str(scale.mode)),
        (
            "sections",
            Json::obj(vec![
                ("latency", Json::Arr(latency_rows)),
                ("cache", cache),
                ("two_sessions", two_sessions),
            ]),
        ),
    ]);
    let text = doc.render();
    validate_artifact(&text).expect("emitted JSON must satisfy the schema");
    // Smoke results land under target/experiments — only full-scale
    // runs may touch the committed repo-root perf artifact.
    let path = if smoke {
        isla_bench::experiments_dir().join("BENCH_serving.smoke.json")
    } else {
        bench_json_path("serving")
    };
    std::fs::write(&path, &text).expect("write BENCH_serving.json");
    println!("  [written {}]", path.display());

    let on_disk = std::fs::read_to_string(&path).expect("re-read artifact");
    validate_artifact(&on_disk).expect("on-disk JSON must satisfy the schema");

    if smoke {
        println!("smoke mode: schema validated");
    }
}
