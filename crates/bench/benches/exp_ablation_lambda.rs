//! A2 — ablation of the step-length factor λ (§V-D / Theorem 1).
//!
//! Theorem 1 says the unbiased step ratio is λ = ε/(ε+ε′), the ratio of
//! the estimators' deviations; the paper fixes λ = 0.8. Under the
//! truncated-normal model the S∪L mean's sensitivity to a sketch
//! deviation is κ = (p2·φ(p2) − p1·φ(p1))/(Φ(p2) − Φ(p1)) ≈ −0.238 at
//! the default boundaries, suggesting a much smaller λ. This sweep
//! measures both modulation styles across λ.

use isla_bench::{fmt, mean_abs_error, within_fraction, Report};
use isla_core::{IslaAggregator, IslaConfig, ModulationStyle};
use isla_datagen::synthetic::virtual_normal_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: u64 = 30;

fn run(style: ModulationStyle, lambda: f64) -> (f64, f64) {
    let ds = virtual_normal_dataset(100.0, 20.0, 10_000_000, 10, 2000);
    let config = IslaConfig::builder()
        .precision(0.1)
        .lambda(lambda)
        .modulation_style(style)
        .build()
        .unwrap();
    let aggregator = IslaAggregator::new(config).unwrap();
    let estimates: Vec<f64> = (0..SEEDS)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            aggregator.aggregate(&ds.blocks, &mut rng).unwrap().estimate
        })
        .collect();
    (
        mean_abs_error(&estimates, 100.0),
        within_fraction(&estimates, 100.0, 0.1),
    )
}

fn main() {
    println!("A2: λ sweep × modulation style; e=0.1, N(100,20²), {SEEDS} seeds");
    let lambdas = [0.2, 0.35, 0.5, 0.65, 0.8, 0.9];

    let mut report = Report::new(
        "exp_ablation_lambda",
        &[
            "lambda",
            "fig-consistent |err|",
            "fig within-e",
            "paper-literal |err|",
            "literal within-e",
        ],
    );
    let mut fig_at_08 = 0.0;
    let mut lit_at_08 = 0.0;
    for &lambda in &lambdas {
        let (fig_err, fig_within) = run(ModulationStyle::FigureConsistent, lambda);
        let (lit_err, lit_within) = run(ModulationStyle::PaperLiteral, lambda);
        if lambda == 0.8 {
            fig_at_08 = fig_err;
            lit_at_08 = lit_err;
        }
        report.row(vec![
            fmt(lambda, 2),
            fmt(fig_err, 4),
            fmt(fig_within, 2),
            fmt(lit_err, 4),
            fmt(lit_within, 2),
        ]);
    }
    report.finish();
    assert!(
        fig_at_08 <= lit_at_08 * 1.25,
        "figure-consistent ({fig_at_08:.4}) should not lose badly to literal ({lit_at_08:.4}) at λ=0.8"
    );
    println!(
        "shape check: figure-consistent ≤ paper-literal at the default λ=0.8; \
         small λ is competitive, as Theorem 1's model predicts."
    );
}
