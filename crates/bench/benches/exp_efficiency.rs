//! E12 — §VIII-F: efficiency on a TPC-H-like `lineitem` column.
//!
//! The paper times 20 runs of each algorithm over a 600M-row, 100 GB
//! dbgen `lineitem`; we run the same comparison on the dbgen-like
//! generator at 6M rows (substitution in DESIGN.md — relative ordering,
//! not absolute time, is the reproduction target). Criterion provides
//! the measurement harness; a summary table reports medians next to the
//! paper's totals.
//!
//! Paper totals (20 runs): ISLA 31,979 ms; MV 61,718 ms; MVB 70,584 ms;
//! US 25,989 ms; STS 84,294 ms — i.e. US < ISLA < MV < MVB < STS.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use isla_baselines::{
    Estimator, IslaEstimator, MeasureBiasedBoundaries, MeasureBiasedValues, StratifiedSampling,
    UniformSampling,
};
use isla_bench::{fmt, paper, Report};
use isla_datagen::tpch::{lineitem_column_dataset, LineitemColumn};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 6_000_000;
const BUDGET: u64 = 200_000;

fn bench_estimators(c: &mut Criterion) {
    println!("E12 (§VIII-F): efficiency on lineitem l_extendedprice, {ROWS} rows, budget {BUDGET}");
    let ds = lineitem_column_dataset(LineitemColumn::ExtendedPrice, ROWS, 10, 1600);

    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(IslaEstimator::default()),
        Box::new(MeasureBiasedValues),
        Box::new(MeasureBiasedBoundaries::default()),
        Box::new(UniformSampling),
        Box::new(StratifiedSampling::proportional()),
    ];

    let mut group = c.benchmark_group("efficiency");
    group.sample_size(10);
    for estimator in &estimators {
        group.bench_function(estimator.name(), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                estimator
                    .estimate(&ds.blocks, BUDGET, &mut rng)
                    .expect("estimation succeeds")
            })
        });
    }
    group.finish();

    // Summary table with manual medians (criterion's own report also
    // lands in target/criterion/). SLEV — full-data algorithmic
    // leveraging, the technique whose cost motivates ISLA — is included
    // as an extra row (not part of the paper's §VIII-F table).
    let median_ms = |estimator: &dyn Estimator| {
        let mut times: Vec<f64> = (0..9)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let start = Instant::now();
                estimator
                    .estimate(&ds.blocks, BUDGET, &mut rng)
                    .expect("estimation succeeds");
                start.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times[times.len() / 2]
    };
    let mut report = Report::new(
        "exp_efficiency",
        &[
            "method",
            "median ms (this run)",
            "paper total ms (20 runs, 600M rows)",
        ],
    );
    let mut sampling_worst = 0.0f64;
    for (estimator, &(paper_name, paper_ms)) in estimators.iter().zip(&paper::EFFICIENCY_MS) {
        assert_eq!(estimator.name(), paper_name);
        let ms = median_ms(estimator.as_ref());
        sampling_worst = sampling_worst.max(ms);
        report.row(vec![
            estimator.name().to_string(),
            fmt(ms, 2),
            fmt(paper_ms, 0),
        ]);
    }
    let slev = isla_baselines::Slev::default();
    let slev_ms = median_ms(&slev);
    report.row(vec![
        "SLEV (full-data)".to_string(),
        fmt(slev_ms, 2),
        "-".to_string(),
    ]);
    report.finish();
    assert!(
        slev_ms > sampling_worst * 2.0,
        "full-data leveraging ({slev_ms:.1} ms) should dominate every \
         sampling-based method (worst {sampling_worst:.1} ms)"
    );
    println!(
        "shape check: the sampling-based methods cluster (our substrate is \
         memory-bound where the paper's was disk-bound); the structural gap \
         the paper's design targets — full-data leveraging (SLEV) vs \
         sampling — shows up at {slev_ms:.0} ms vs ≤{sampling_worst:.0} ms."
    );
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
