//! E10 — Table VI: exponential distributions, γ ∈ {0.05, 0.1, 0.15,
//! 0.2} (accurate mean 1/γ). ISLA tracks the truth; MV overshoots by
//! roughly 2× (size bias E[a²]/E[a] = 2/γ for the exponential); MVB
//! keeps a ≈10% positive bias.

use isla_baselines::{Estimator, MeasureBiasedBoundaries, MeasureBiasedValues};
use isla_bench::{fmt, paper, Report};
use isla_core::{IslaAggregator, IslaConfig};
use isla_datagen::spec::Dataset;
use isla_stats::distributions::{Distribution, Exponential};
use isla_stats::required_sample_size;
use isla_storage::{BlockSet, DataBlock, GeneratorBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn exponential_virtual(rate: f64, rows: u64, blocks: usize, seed: u64) -> Dataset {
    let dist: Arc<dyn Distribution> = Arc::new(Exponential::new(rate));
    let per = rows / blocks as u64;
    let block_vec: Vec<Arc<dyn DataBlock>> = (0..blocks)
        .map(|i| {
            Arc::new(GeneratorBlock::new(Arc::clone(&dist), per, seed + i as u64))
                as Arc<dyn DataBlock>
        })
        .collect();
    Dataset::virtual_truth(
        format!("exp(γ={rate})"),
        BlockSet::new(block_vec),
        1.0 / rate,
        1.0 / rate,
    )
}

fn main() {
    println!("E10 (Table VI): exponential distributions, e=0.1 (default parameters)");
    let config = IslaConfig::builder().precision(0.1).build().unwrap();
    let aggregator = IslaAggregator::new(config).unwrap();

    let mut report = Report::new(
        "exp_table6_exponential",
        &[
            "gamma",
            "accurate",
            "ISLA",
            "MV",
            "MVB",
            "paper ISLA",
            "paper MV",
            "paper MVB",
        ],
    );
    for (i, &(gamma, acc, p_isla, p_mv, p_mvb)) in paper::TABLE6.iter().enumerate() {
        let ds = exponential_virtual(gamma, 10_000_000, 10, 1400 + 10 * i as u64);
        let budget = required_sample_size(1.0 / gamma, 0.1, 0.95).min(2_000_000);
        let mut rng = StdRng::seed_from_u64(9000 + i as u64);
        let isla = aggregator.aggregate(&ds.blocks, &mut rng).unwrap().estimate;
        let mut rng = StdRng::seed_from_u64(9000 + i as u64);
        let mv = MeasureBiasedValues
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9000 + i as u64);
        let mvb = MeasureBiasedBoundaries::default()
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap();
        report.row(vec![
            fmt(gamma, 2),
            fmt(acc, 2),
            fmt(isla, 4),
            fmt(mv, 4),
            fmt(mvb, 4),
            fmt(p_isla, 4),
            fmt(p_mv, 4),
            fmt(p_mvb, 4),
        ]);
        // Shapes: ISLA close to 1/γ; MV ≈ 2/γ; MVB between.
        let truth = 1.0 / gamma;
        assert!(
            (isla - truth).abs() / truth < 0.12,
            "γ={gamma}: ISLA {isla} vs truth {truth}"
        );
        assert!(
            (mv - 2.0 * truth).abs() / truth < 0.25,
            "γ={gamma}: MV {mv} should show the ≈2/γ size bias"
        );
        assert!(
            (mvb - truth).abs() < (mv - truth).abs(),
            "γ={gamma}: MVB {mvb} should beat MV {mv}"
        );
    }
    report.finish();
    println!("shape check: ISLA ≈ 1/γ, MV ≈ 2/γ, MVB in between (Table VI).");
}
