//! A1 — ablation of the leverage-allocating parameter `q` (§IV-A.4).
//!
//! The paper introduces `q` to "detect and reduce the obvious deviation
//! of sketch0". This ablation forces a deviated sketch (boundaries built
//! around µ + δ) and compares the per-block answers with the paper's
//! q-tiers against `q` pinned to 1. The sketch-interval clamp is
//! disabled in both arms to isolate the leverage-allocation effect.

use isla_bench::{fmt, mean_abs_error, Report};
use isla_core::{execute_block, DataBoundaries, IslaConfig};
use isla_datagen::normal_values;
use isla_storage::MemBlock;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MU: f64 = 100.0;
const SIGMA: f64 = 20.0;
const SAMPLES: u64 = 15_000;
const SEEDS: u64 = 40;

fn run_arm(config: &IslaConfig, delta: f64, block: &MemBlock) -> Vec<f64> {
    let sketch0 = MU + delta;
    let boundaries = DataBoundaries::new(sketch0, SIGMA, config.p1, config.p2);
    (0..SEEDS)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            execute_block(
                block, 0, SAMPLES, boundaries, sketch0, 0.0, config, &mut rng,
            )
            .expect("block execution succeeds")
            .answer
        })
        .collect()
}

fn main() {
    println!("A1: q-tier ablation under forced sketch deviation δ (clamp off)");
    let with_q = IslaConfig::builder()
        .precision(0.1)
        .clamp_to_sketch_interval(false)
        .build()
        .unwrap();
    let without_q = IslaConfig::builder()
        .precision(0.1)
        .clamp_to_sketch_interval(false)
        .q_moderate(1.0)
        .q_strong(1.0)
        .build()
        .unwrap();
    let block = MemBlock::new(normal_values(MU, SIGMA, 400_000, 1900));

    let mut report = Report::new(
        "exp_ablation_q",
        &[
            "delta",
            "dev regime",
            "mean |err| q-tiers",
            "mean |err| q=1",
        ],
    );
    for &delta in &[0.0, 0.3, 0.6, 1.2] {
        // dev ≈ 1 + 2.085·δ/σ: 0.3 → neutral, 0.6 → moderate, 1.2 → strong.
        let regime = match delta {
            d if d < 0.3 => "balanced",
            d if d < 0.6 => "neutral/moderate",
            d if d < 1.2 => "moderate",
            _ => "strong",
        };
        let tiered = run_arm(&with_q, delta, &block);
        let pinned = run_arm(&without_q, delta, &block);
        report.row(vec![
            fmt(delta, 2),
            regime.to_string(),
            fmt(mean_abs_error(&tiered, MU), 4),
            fmt(mean_abs_error(&pinned, MU), 4),
        ]);
    }
    report.finish();
    println!(
        "note: the iteration's final answer is invariant to k's magnitude \
         (DESIGN.md reparametrization property), so q acts only through \
         degenerate-k edge cases — this ablation documents that finding."
    );
}
