//! E11 — Table VII: uniform data on [1, 199] (truth 100), five datasets.
//!
//! Paper: ISLA 99.5–99.85, MV ≈ 132 (the size bias (µ²+σ²)/µ = 132.67),
//! MVB ≈ 92.8–95.4. The uniform is "an extreme condition of normal
//! distributions with a very large σ": ISLA stays robust but may miss
//! the strict precision target — exactly the caveat the paper reports.

use isla_baselines::{Estimator, MeasureBiasedBoundaries, MeasureBiasedValues};
use isla_bench::{fmt, mean_abs_error, paper, Report};
use isla_core::{IslaAggregator, IslaConfig};
use isla_datagen::spec::Dataset;
use isla_stats::distributions::{Distribution, UniformRange};
use isla_stats::required_sample_size;
use isla_storage::{BlockSet, DataBlock, GeneratorBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn uniform_virtual(rows: u64, blocks: usize, seed: u64) -> Dataset {
    let dist: Arc<dyn Distribution> = Arc::new(UniformRange::new(1.0, 199.0));
    let per = rows / blocks as u64;
    let block_vec: Vec<Arc<dyn DataBlock>> = (0..blocks)
        .map(|i| {
            Arc::new(GeneratorBlock::new(Arc::clone(&dist), per, seed + i as u64))
                as Arc<dyn DataBlock>
        })
        .collect();
    Dataset::virtual_truth(
        "uniform[1,199)".to_string(),
        BlockSet::new(block_vec),
        100.0,
        dist.std_dev(),
    )
}

fn main() {
    println!("E11 (Table VII): uniform [1,199], truth 100, 5 datasets, e=0.1");
    let config = IslaConfig::builder().precision(0.1).build().unwrap();
    let aggregator = IslaAggregator::new(config).unwrap();
    let sigma = (198.0f64 * 198.0 / 12.0).sqrt();
    let budget = required_sample_size(sigma, 0.1, 0.95).min(2_000_000);

    let mut report = Report::new("exp_table7_uniform", &["dataset", "ISLA", "MV", "MVB"]);
    let (mut isla_all, mut mv_all, mut mvb_all) = (Vec::new(), Vec::new(), Vec::new());
    for i in 0..5usize {
        let ds = uniform_virtual(10_000_000, 10, 1500 + 10 * i as u64);
        let mut rng = StdRng::seed_from_u64(9500 + i as u64);
        let isla = aggregator.aggregate(&ds.blocks, &mut rng).unwrap().estimate;
        let mut rng = StdRng::seed_from_u64(9500 + i as u64);
        let mv = MeasureBiasedValues
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9500 + i as u64);
        let mvb = MeasureBiasedBoundaries::default()
            .estimate(&ds.blocks, budget, &mut rng)
            .unwrap();
        isla_all.push(isla);
        mv_all.push(mv);
        mvb_all.push(mvb);
        report.row(vec![
            (i + 1).to_string(),
            fmt(isla, 4),
            fmt(mv, 4),
            fmt(mvb, 4),
        ]);
    }
    report.row(vec![
        "paper".to_string(),
        "99.5–99.85".to_string(),
        format!("≈{}", paper::TABLE7_MV_CENTER),
        "92.8–95.4".to_string(),
    ]);
    report.finish();

    let isla_err = mean_abs_error(&isla_all, 100.0);
    let mv_err = mean_abs_error(&mv_all, 100.0);
    let mvb_err = mean_abs_error(&mvb_all, 100.0);
    println!("mean |err|: ISLA {isla_err:.3}  MV {mv_err:.3}  MVB {mvb_err:.3}");
    // Shapes: MV ≈ 132.67; ISLA much more robust than both competitors.
    let mv_avg = mv_all.iter().sum::<f64>() / mv_all.len() as f64;
    assert!(
        (mv_avg - 132.67).abs() < 1.5,
        "MV should sit at the ≈132.67 size bias, got {mv_avg:.3}"
    );
    assert!(
        isla_err < mv_err && isla_err < mvb_err + 1.0,
        "ISLA should be the most robust: {isla_err:.3} vs MV {mv_err:.3} / MVB {mvb_err:.3}"
    );
    println!("shape check: ISLA robust, MV ≈ 132, MVB biased low-ish (Table VII).");
}
