//! E8 — Table IV: modulation abilities — the per-block partial answers
//! behind one Table-III run, showing that ISLA modulates `sketch0`
//! toward µ inside every block while MV/MVB drift outside the sketch's
//! confidence interval.

use isla_baselines::{Estimator, MeasureBiasedBoundaries, MeasureBiasedValues};
use isla_bench::{fmt, paper, Report};
use isla_core::{IslaAggregator, IslaConfig};
use isla_datagen::synthetic::virtual_normal_dataset;
use isla_stats::required_sample_size;
use isla_storage::BlockSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E8 (Table IV): per-block partial answers; e=0.1, dataset 1");
    let config = IslaConfig::builder().precision(0.1).build().unwrap();
    let aggregator = IslaAggregator::new(config).unwrap();
    let ds = virtual_normal_dataset(100.0, 20.0, 10_000_000, 10, 1200);
    let per_block_budget = required_sample_size(20.0, 0.1, 0.95) / 10;

    let mut rng = StdRng::seed_from_u64(6000);
    let result = aggregator.aggregate(&ds.blocks, &mut rng).unwrap();
    println!(
        "sketch0 = {:.4} (paper run: {})",
        result.pre.sketch0,
        paper::TABLE4_SKETCH0
    );

    let mut report = Report::new(
        "exp_table4_modulation",
        &["block", "ISLA partial", "case", "MV partial", "MVB partial"],
    );
    let (mut isla_sum, mut mv_sum, mut mvb_sum) = (0.0, 0.0, 0.0);
    for (i, outcome) in result.blocks.iter().enumerate() {
        // MV / MVB partials over the same block at the per-block budget.
        let single = BlockSet::new(vec![ds.blocks.block(i).clone()]);
        let mut rng = StdRng::seed_from_u64(7000 + i as u64);
        let mv = MeasureBiasedValues
            .estimate(&single, per_block_budget, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7000 + i as u64);
        let mvb = MeasureBiasedBoundaries::default()
            .estimate(&single, per_block_budget, &mut rng)
            .unwrap();
        isla_sum += outcome.answer;
        mv_sum += mv;
        mvb_sum += mvb;
        report.row(vec![
            (i + 1).to_string(),
            fmt(outcome.answer, 4),
            outcome
                .case
                .map(|c| c.paper_number().to_string())
                .unwrap_or_else(|| "-".to_string()),
            fmt(mv, 4),
            fmt(mvb, 4),
        ]);
    }
    let n = result.blocks.len() as f64;
    report.row(vec![
        "average".to_string(),
        fmt(isla_sum / n, 4),
        String::new(),
        fmt(mv_sum / n, 4),
        fmt(mvb_sum / n, 4),
    ]);
    let (p_isla, p_mv, p_mvb) = paper::TABLE4_AVGS;
    report.row(vec![
        "paper avg".to_string(),
        fmt(p_isla, 4),
        String::new(),
        fmt(p_mv, 4),
        fmt(p_mvb, 4),
    ]);
    report.finish();

    // Shape: every ISLA partial stays inside the sketch's relaxed
    // interval; MV partials sit ≈4 above it.
    let half = 2.0 * 0.1; // tₑ·e
    for outcome in &result.blocks {
        assert!(
            (outcome.answer - result.pre.sketch0).abs() <= half + 0.35,
            "ISLA partial {} strays from sketch0 {}",
            outcome.answer,
            result.pre.sketch0
        );
    }
    assert!(
        (mv_sum / n - 104.0).abs() < 1.0,
        "MV partials should average ≈104, got {}",
        mv_sum / n
    );
    println!("shape check: ISLA partials hug µ; MV partials sit ≈104 (Table IV).");
}
