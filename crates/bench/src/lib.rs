//! Support library for the ISLA experiment harness.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper's evaluation (Section VIII) — see the per-experiment index
//! in `DESIGN.md`. This crate holds the shared plumbing: aligned console
//! tables that double as CSV writers (under `target/experiments/`),
//! error-statistics helpers, and the paper's published numbers for
//! side-by-side comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory experiment CSVs are written to: `<target dir>/experiments`.
///
/// Resolution order: an explicit `CARGO_TARGET_DIR` override (a
/// relative override is anchored at the workspace root, since bench
/// and test processes run with a per-crate working directory), then
/// `<workspace root>/target`, where the workspace root is found by
/// walking up from this crate's manifest — so the path survives crate
/// moves within the workspace.
pub fn experiments_dir() -> PathBuf {
    let target = match std::env::var_os("CARGO_TARGET_DIR").map(PathBuf::from) {
        Some(dir) if dir.is_absolute() => dir,
        Some(dir) => workspace_root().join(dir),
        None => workspace_root().join("target"),
    };
    let dir = target.join("experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// The path a machine-readable benchmark artifact is written to:
/// `<workspace root>/BENCH_<name>.json`. Living at the repo root (not
/// under `target/`), these files make the perf trajectory diffable
/// across commits.
pub fn bench_json_path(name: &str) -> PathBuf {
    workspace_root().join(format!("BENCH_{name}.json"))
}

/// Finds the enclosing workspace root: the nearest ancestor of this
/// crate's manifest directory whose `Cargo.toml` declares `[workspace]`.
/// Falls back to the manifest directory itself if none is found.
fn workspace_root() -> PathBuf {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for dir in manifest_dir.ancestors().skip(1) {
        let candidate = dir.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&candidate) {
            if contents.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
    }
    manifest_dir
}

/// An aligned console table that is simultaneously captured as CSV.
pub struct Report {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report named after the experiment id (e.g. `table3`).
    pub fn new(name: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            name: name.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Convenience: adds a row of displayable cells.
    pub fn row_of(&mut self, cells: &[&dyn Display]) {
        self.row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Prints the aligned table and writes `target/experiments/<name>.csv`.
    pub fn finish(self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", line.join("  "));
        };
        println!();
        print_row(&self.headers);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            print_row(row);
        }
        println!();

        let path = experiments_dir().join(format!("{}.csv", self.name));
        let mut file =
            std::io::BufWriter::new(fs::File::create(&path).expect("create experiment csv"));
        writeln!(file, "{}", self.headers.join(",")).expect("write csv header");
        for row in &self.rows {
            writeln!(file, "{}", row.join(",")).expect("write csv row");
        }
        file.flush().expect("flush csv");
        println!("  [written {}]", path.display());
    }
}

/// Formats a float with fixed precision for table cells.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// A dependency-free JSON value tree for benchmark artifacts, plus a
/// minimal parser used to validate emitted files (the CI smoke step
/// runs it so the schema cannot silently rot).
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// A finite number.
        Num(f64),
        /// A string.
        Str(String),
        /// A boolean.
        Bool(bool),
        /// An ordered array.
        Arr(Vec<Json>),
        /// An object with insertion-ordered keys.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Convenience: an object from key/value pairs.
        pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
            Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        }

        /// Convenience: a string value.
        pub fn str(s: impl Into<String>) -> Json {
            Json::Str(s.into())
        }

        /// Convenience: a numeric value.
        ///
        /// # Panics
        ///
        /// Panics on a non-finite number — JSON has no encoding for it,
        /// and a NaN in a perf artifact is always a harness bug.
        pub fn num(v: f64) -> Json {
            assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
            Json::Num(v)
        }

        /// Renders the value as pretty-printed JSON.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out, 0);
            out.push('\n');
            out
        }

        fn render_into(&self, out: &mut String, depth: usize) {
            let pad = "  ".repeat(depth + 1);
            let close = "  ".repeat(depth);
            match self {
                Json::Num(v) => {
                    write!(out, "{v}").expect("string write");
                }
                Json::Bool(b) => {
                    write!(out, "{b}").expect("string write");
                }
                Json::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => {
                                write!(out, "\\u{:04x}", c as u32).expect("string write");
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(if i == 0 { "\n" } else { ",\n" });
                        out.push_str(&pad);
                        item.render_into(out, depth + 1);
                    }
                    out.push('\n');
                    out.push_str(&close);
                    out.push(']');
                }
                Json::Obj(pairs) => {
                    if pairs.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push('{');
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        out.push_str(if i == 0 { "\n" } else { ",\n" });
                        out.push_str(&pad);
                        Json::Str(k.clone()).render_into(out, depth + 1);
                        out.push_str(": ");
                        v.render_into(out, depth + 1);
                    }
                    out.push('\n');
                    out.push_str(&close);
                    out.push('}');
                }
            }
        }
    }

    /// Parses `text` as a single JSON value — the validation half of
    /// the round trip. Accepts exactly what [`Json::render`] emits
    /// (plus `null`, rejected as un-renderable) and nothing exotic.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut pos = 0usize;
        let value = parse_value(&bytes, &mut pos)?;
        skip_ws(&bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at offset {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[char], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at offset {pos}", pos = *pos))
        }
    }

    fn parse_value(b: &[char], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some('{') => {
                *pos += 1;
                let mut pairs = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&'}') {
                    *pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    skip_ws(b, pos);
                    let Json::Str(key) = parse_string(b, pos)? else {
                        unreachable!("parse_string returns Str")
                    };
                    skip_ws(b, pos);
                    expect(b, pos, ':')?;
                    pairs.push((key, parse_value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(',') => *pos += 1,
                        Some('}') => {
                            *pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
                    }
                }
            }
            Some('[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(',') => *pos += 1,
                        Some(']') => {
                            *pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
                    }
                }
            }
            Some('"') => parse_string(b, pos),
            Some('t') if b[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
                *pos += 4;
                Ok(Json::Bool(true))
            }
            Some('f') if b[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
                *pos += 5;
                Ok(Json::Bool(false))
            }
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let start = *pos;
                while *pos < b.len()
                    && (b[*pos].is_ascii_digit() || matches!(b[*pos], '-' | '+' | '.' | 'e' | 'E'))
                {
                    *pos += 1;
                }
                let text: String = b[start..*pos].iter().collect();
                text.parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| format!("bad number {text:?} at offset {start}"))
            }
            other => Err(format!("unexpected {other:?} at offset {}", *pos)),
        }
    }

    fn parse_string(b: &[char], pos: &mut usize) -> Result<Json, String> {
        expect(b, pos, '"')?;
        let mut s = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                '"' => return Ok(Json::Str(s)),
                '\\' => {
                    let esc = b.get(*pos).copied().ok_or("truncated escape")?;
                    *pos += 1;
                    match esc {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        'n' => s.push('\n'),
                        't' => s.push('\t'),
                        'u' => {
                            let hex: String = b
                                .get(*pos..*pos + 4)
                                .ok_or("truncated \\u escape")?
                                .iter()
                                .collect();
                            *pos += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            s.push(char::from_u32(code).ok_or("invalid codepoint")?);
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => s.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    /// Looks up a dotted path (`"sections.filtered_sampling"`) in a
    /// parsed value, for schema validation.
    pub fn get<'a>(value: &'a Json, path: &str) -> Option<&'a Json> {
        let mut cur = value;
        for part in path.split('.') {
            match cur {
                Json::Obj(pairs) => {
                    cur = &pairs.iter().find(|(k, _)| k == part)?.1;
                }
                _ => return None,
            }
        }
        Some(cur)
    }
}

/// Mean absolute error of a set of estimates against a truth.
pub fn mean_abs_error(estimates: &[f64], truth: f64) -> f64 {
    estimates.iter().map(|e| (e - truth).abs()).sum::<f64>() / estimates.len() as f64
}

/// Fraction of estimates within ±e of the truth.
pub fn within_fraction(estimates: &[f64], truth: f64, e: f64) -> f64 {
    estimates
        .iter()
        .filter(|&&x| (x - truth).abs() <= e)
        .count() as f64
        / estimates.len() as f64
}

/// Published numbers from the paper, for side-by-side reporting.
pub mod paper {
    /// Table III averages over 10 datasets (e = 0.1, truth 100).
    pub const TABLE3_ISLA_AVG: f64 = 100.0296;
    /// Table III MV average.
    pub const TABLE3_MV_AVG: f64 = 104.0036;
    /// Table III MVB average.
    pub const TABLE3_MVB_AVG: f64 = 100.515;
    /// Table IV: sketch0 of the modulation-ability experiment.
    pub const TABLE4_SKETCH0: f64 = 99.676;
    /// Table IV per-block averages (ISLA / MV / MVB).
    pub const TABLE4_AVGS: (f64, f64, f64) = (100.003, 104.049, 100.558);
    /// Table V ISLA answers (e = 0.5, rate r/3).
    pub const TABLE5_ISLA: [f64; 5] = [100.158, 99.8936, 100.136, 99.8917, 100.178];
    /// Table V US answers (rate r).
    pub const TABLE5_US: [f64; 5] = [99.6591, 99.8918, 99.8675, 99.7068, 99.8371];
    /// Table V STS answers (rate r).
    pub const TABLE5_STS: [f64; 5] = [99.7996, 100.084, 100.261, 99.7332, 99.1607];
    /// Table VI: (γ, accurate, ISLA, MV, MVB).
    pub const TABLE6: [(f64, f64, f64, f64, f64); 4] = [
        (0.05, 20.0, 19.8713, 39.7174, 21.8042),
        (0.10, 10.0, 9.53488, 20.2711, 11.0635),
        (0.15, 6.67, 6.32677, 13.2486, 7.30495),
        (0.20, 5.0, 4.60377, 10.3369, 5.49333),
    ];
    /// Table VII ranges: ISLA ≈ 99.5–99.85, MV ≈ 132, MVB ≈ 92.8–95.4.
    pub const TABLE7_MV_CENTER: f64 = 132.0;
    /// §VIII-F run times (ms, 20 runs, 600M rows): ISLA, MV, MVB, US, STS.
    pub const EFFICIENCY_MS: [(&str, f64); 5] = [
        ("ISLA", 31_979.0),
        ("MV", 61_718.0),
        ("MVB", 70_584.0),
        ("US", 25_989.0),
        ("STS", 84_294.0),
    ];
    /// §VIII-G salary: truth and per-method answers (ISLA at half budget).
    pub const SALARY: (f64, [(&str, f64); 5]) = (
        1740.38,
        [
            ("ISLA", 1731.48),
            ("MV", 2326.78),
            ("MVB", 1798.78),
            ("US", 1742.79),
            ("STS", 1740.37),
        ],
    );
    /// §VIII-G TLC trip distance ×1000: truth and per-method answers.
    pub const TLC: (f64, [(&str, f64); 5]) = (
        4648.2,
        [
            ("ISLA", 4515.73),
            ("MV", 7426.37),
            ("MVB", 3298.09),
            ("US", 2908.53),
            ("STS", 4289.08),
        ],
    );
    /// §VIII-A data-size sweep answers for 10⁸…10¹² rows.
    pub const DATA_SIZE: [(f64, f64); 5] = [
        (1e8, 99.9927),
        (1e9, 99.9999),
        (1e10, 100.0119),
        (1e11, 100.0035),
        (1e12, 100.0004),
    ];
    /// §VIII-D non-i.i.d. answers (truth 100, e = 0.5).
    pub const NONIID: [f64; 5] = [99.8538, 100.066, 100.194, 100.321, 99.8333];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_helpers() {
        let est = [99.0, 101.0, 100.2];
        assert!((mean_abs_error(&est, 100.0) - (1.0 + 1.0 + 0.2) / 3.0).abs() < 1e-12);
        assert!((within_fraction(&est, 100.0, 0.5) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(fmt(1.23456, 2), "1.23");
    }

    #[test]
    fn report_writes_csv() {
        let mut r = Report::new("unit_test_report", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.row_of(&[&3.5, &"x"]);
        r.finish();
        let path = experiments_dir().join("unit_test_report.csv");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n1,2\n3.5,x"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn experiments_dir_resolves_under_the_active_target_dir() {
        let dir = experiments_dir();
        assert!(dir.exists(), "{} should exist", dir.display());
        assert_eq!(dir.file_name().unwrap(), "experiments");
        if std::env::var_os("CARGO_TARGET_DIR").is_none() {
            let parent = dir.parent().unwrap();
            assert_eq!(parent.file_name().unwrap(), "target");
            assert!(
                parent.parent().unwrap().join("Cargo.toml").exists(),
                "target dir should sit in the workspace root"
            );
        }
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn report_rejects_ragged_rows() {
        let mut r = Report::new("ragged", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn json_round_trips() {
        use super::json::{get, parse, Json};
        let doc = Json::obj(vec![
            ("bench", Json::str("kernels")),
            ("speedup", Json::num(2.5)),
            ("ok", Json::Bool(true)),
            (
                "rows",
                Json::Arr(vec![Json::num(1.0), Json::num(-2e3), Json::num(0.125)]),
            ),
            ("nested", Json::obj(vec![("k", Json::str("v \"quoted\""))])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        let parsed = parse(&text).expect("rendered JSON parses");
        assert_eq!(parsed, doc);
        assert_eq!(get(&parsed, "nested.k"), Some(&Json::str("v \"quoted\"")));
        assert_eq!(get(&parsed, "speedup"), Some(&Json::Num(2.5)));
        assert!(get(&parsed, "missing.path").is_none());
        assert!(parse("{\"unterminated\": ").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn json_rejects_nan() {
        let _ = super::json::Json::num(f64::NAN);
    }

    #[test]
    fn bench_json_path_sits_at_the_workspace_root() {
        let path = bench_json_path("unit_test");
        assert_eq!(path.file_name().unwrap(), "BENCH_unit_test.json");
        assert!(path.parent().unwrap().join("Cargo.toml").exists());
    }
}
