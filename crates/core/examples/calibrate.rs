//! Calibration scratch: error distribution of ISLA across seeds for
//! different λ / modulation styles. Not part of the public surface.

use isla_core::{IslaAggregator, IslaConfig, ModulationStyle};
use isla_datagen::normal_dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(label: &str, e: f64, lambda: f64, style: ModulationStyle, clamp: bool, runs: u64) {
    let ds = normal_dataset(100.0, 20.0, 600_000, 10, 42);
    let config = IslaConfig::builder()
        .precision(e)
        .lambda(lambda)
        .modulation_style(style)
        .clamp_to_sketch_interval(clamp)
        .build()
        .unwrap();
    let agg = IslaAggregator::new(config).unwrap();
    let mut errs = Vec::new();
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = agg.aggregate(&ds.blocks, &mut rng).unwrap();
        errs.push((r.estimate - ds.true_mean).abs());
    }
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    let within = errs.iter().filter(|&&x| x <= e).count();
    println!(
        "{label::<40} e={e} mean|err|={mean:.4} p50={:.4} p95={:.4} max={:.4} within-e {}/{}",
        errs[errs.len() / 2],
        errs[(errs.len() * 95) / 100],
        errs[errs.len() - 1],
        within,
        errs.len()
    );
}

fn main() {
    let runs = 40;
    for e in [0.5, 0.1] {
        run(
            "λ=0.8 fig clamp",
            e,
            0.8,
            ModulationStyle::FigureConsistent,
            true,
            runs,
        );
        run(
            "λ=0.8 fig noclamp",
            e,
            0.8,
            ModulationStyle::FigureConsistent,
            false,
            runs,
        );
        run(
            "λ=0.8 literal clamp",
            e,
            0.8,
            ModulationStyle::PaperLiteral,
            true,
            runs,
        );
        run(
            "λ=0.24 fig clamp",
            e,
            0.24,
            ModulationStyle::FigureConsistent,
            true,
            runs,
        );
        run(
            "λ=0.5 fig clamp",
            e,
            0.5,
            ModulationStyle::FigureConsistent,
            true,
            runs,
        );
        println!();
    }
}
