//! The execution engine: the paper's Pre-estimation → per-block
//! Calculation → Summarization pipeline, owned once.
//!
//! Four call sites used to re-implement this pipeline — the sequential
//! [`crate::IslaAggregator`], the distributed coordinator, the
//! time-constrained path, and the query executor. They are now thin
//! wrappers over this module's layers:
//!
//! * **Plan** ([`QueryPlan`]) — validated config + pre-estimate + shift +
//!   boundaries + resolved sampling rate. Build it with pilots
//!   ([`QueryPlan::prepare`]) or from a cached pre-estimate
//!   ([`QueryPlan::from_pre_estimate`] via [`PreEstimateCache`], the
//!   repeated-query fast path);
//! * **Schedule** ([`BlockScheduler`]) — where the per-block Calculation
//!   phase runs: [`SequentialScheduler`], [`PooledScheduler`] (crossbeam
//!   worker pool), or [`DeadlineScheduler`] (budget capping as an
//!   admission policy around any inner scheduler). Per-block seeds are
//!   derived once ([`derive_block_seeds`]), so every scheduler returns
//!   the bit-identical answer for the same RNG stream;
//! * **Merge** ([`PartialAggregate`]) — associative per-block state that
//!   combines in any completion order and finalizes into the
//!   size-weighted Summarization answer.
//!
//! Sampling runs through the storage layer's **batch kernels**
//! ([`isla_storage::kernel`]): the per-block Calculation phase draws
//! whole batches on reusable thread-local buffers
//! (`DataBlock::sample_batch` / `sample_rows_batch`), bit-identical in
//! values and RNG stream to the scalar loops they replaced — so the
//! determinism guarantees above survive the batching unchanged (pinned
//! by `tests/kernel_identity.rs`).
//!
//! The [`rows`] module generalizes the pipeline to the **row model**:
//! a [`RowSpec`] (aggregated column + compiled predicate + group key)
//! plans per group ([`RowPlan`], with selectivity estimated by the
//! pilots), executes through the same schedulers, and merges through
//! the per-group [`GroupedPartial`] — so `WHERE` and `GROUP BY` run
//! with the same determinism guarantees as the scalar path.
//!
//! ```
//! use isla_core::engine::{self, RateSpec, SequentialScheduler, PooledScheduler};
//! use isla_core::IslaConfig;
//! use isla_storage::BlockSet;
//! use rand::SeedableRng;
//!
//! let data = BlockSet::from_values(
//!     (0..60_000).map(|i| 50.0 + (i % 11) as f64).collect(),
//!     8,
//! );
//! let config = IslaConfig::builder().precision(0.5).build().unwrap();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let sequential = engine::run(&data, &config, RateSpec::Derived, &SequentialScheduler, &mut rng).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let pooled_scheduler = PooledScheduler::new(4).unwrap();
//! let pooled = engine::run(&data, &config, RateSpec::Derived, &pooled_scheduler, &mut rng).unwrap();
//! assert_eq!(sequential.estimate, pooled.estimate); // scheduling never changes the answer
//! ```

pub mod cache;
pub mod partial;
pub mod plan;
pub mod rows;
pub mod scheduler;
pub mod seed;

pub use cache::{
    CacheKey, CacheLookup, CacheStats, EpochCacheStats, PreEstimateCache, RowCacheLookup,
};
pub use partial::{FinalAggregate, GroupedAggregate, GroupedPartial, PartialAggregate};
pub use plan::{QueryPlan, RateSpec};
pub use rows::{
    execute_row_block, finish_row_pilot_fold, fold_row_pilot_segment, row_pre_estimate,
    row_pre_estimate_capped, run_row_plan, run_rows, scan_exact_groups, GroupEstimate, GroupExact,
    GroupPlan, GroupPre, GroupedEngineResult, RowBlockOutcome, RowGroupOutcome, RowPilotFold,
    RowPlan, RowPreEstimate, RowSpec,
};
pub use scheduler::{
    execute_planned_block, scan_blocks, BlockExecution, BlockScheduler, DeadlineScheduler,
    EngineRun, PooledScheduler, SequentialScheduler, WorkerStats,
};
pub use seed::{derive_block_seeds, seeded_rng, stream_seed};

use rand::RngCore;

use isla_storage::BlockSet;

use crate::block_exec::BlockOutcome;
use crate::config::IslaConfig;
use crate::error::IslaError;
use crate::pre_estimation::PreEstimate;

/// The engine's complete output: the combined answer plus everything the
/// wrapper APIs expose (pre-estimate, shift, per-block outcomes, worker
/// statistics, deadline capping).
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// The approximate AVG — the headline answer.
    pub estimate: f64,
    /// The approximate SUM, `estimate × M`.
    pub sum_estimate: f64,
    /// Total rows `M` across blocks.
    pub data_size: u64,
    /// Pre-estimation output backing the plan.
    pub pre: PreEstimate,
    /// Negative-data translation applied (0 when none).
    pub shift: f64,
    /// Per-block outcomes, in block order.
    pub blocks: Vec<BlockOutcome>,
    /// Calculation-phase samples drawn (excludes pilots).
    pub total_samples: u64,
    /// Per-worker statistics (empty for degenerate short-circuits).
    pub worker_stats: Vec<WorkerStats>,
    /// Whether an admission policy (deadline budget) capped the plan.
    pub time_limited: bool,
}

impl EngineResult {
    /// Samples drawn including the pre-estimation pilots.
    pub fn total_samples_with_pilots(&self) -> u64 {
        self.total_samples + self.pre.sigma_pilot_used + self.pre.sketch_pilot_used
    }
}

/// Prepares a plan on `data` (running the pilots) and executes it on
/// `scheduler` — the whole pipeline in one call.
///
/// # Errors
///
/// Invalid configuration/rate, pre-estimation failures, or the first
/// block failure.
pub fn run(
    data: &BlockSet,
    config: &IslaConfig,
    rate: RateSpec,
    scheduler: &dyn BlockScheduler,
    rng: &mut dyn RngCore,
) -> Result<EngineResult, IslaError> {
    let plan = QueryPlan::prepare(data, config, rate, rng)?;
    run_plan(plan, data, scheduler, rng)
}

/// Executes an already-prepared plan on `scheduler`.
///
/// The scheduler's admission policy runs first (deadline capping), then
/// per-block seeds are derived from `rng` — one `next_u64` per block in
/// block order — and the Calculation phase fans out. Degenerate plans
/// (σ = 0) short-circuit to the pinned answer without touching blocks.
///
/// # Errors
///
/// The first block failure, or [`IslaError::InsufficientData`] when the
/// blocks carry no rows.
pub fn run_plan(
    plan: QueryPlan,
    data: &BlockSet,
    scheduler: &dyn BlockScheduler,
    rng: &mut dyn RngCore,
) -> Result<EngineResult, IslaError> {
    let (plan, time_limited) = scheduler.admit(plan, data);
    let data_size = plan.data_size();
    if plan.is_degenerate() {
        let pre = plan.pre().clone();
        return Ok(EngineResult {
            estimate: pre.sketch0,
            sum_estimate: pre.sketch0 * data_size as f64,
            data_size,
            pre,
            shift: 0.0,
            blocks: Vec::new(),
            total_samples: 0,
            worker_stats: Vec::new(),
            time_limited: false,
        });
    }
    let seeds = derive_block_seeds(rng, data.block_count());
    let exec = BlockExecution {
        plan: &plan,
        data,
        seeds: &seeds,
    };
    let out = scheduler.execute(&exec)?;
    let combined = out.partial.finalize()?;
    Ok(EngineResult {
        estimate: combined.estimate,
        sum_estimate: combined.estimate * data_size as f64,
        data_size,
        pre: plan.pre().clone(),
        shift: plan.shift(),
        blocks: combined.blocks,
        total_samples: combined.total_samples,
        worker_stats: out.worker_stats,
        time_limited,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    #[test]
    fn run_produces_the_classic_pipeline_output() {
        let ds = normal_dataset(100.0, 20.0, 300_000, 10, 63);
        let mut rng = StdRng::seed_from_u64(5);
        let out = run(
            &ds.blocks,
            &config(0.5),
            RateSpec::Derived,
            &SequentialScheduler,
            &mut rng,
        )
        .unwrap();
        assert!((out.estimate - ds.true_mean).abs() < 1.0);
        assert_eq!(out.blocks.len(), 10);
        assert_eq!(out.data_size, 300_000);
        assert!((out.sum_estimate - out.estimate * 300_000.0).abs() < 1e-3);
        assert!(out.total_samples > 0);
        assert!(out.total_samples_with_pilots() > out.total_samples);
        assert!(!out.time_limited);
        assert_eq!(out.worker_stats.len(), 1);
        assert_eq!(out.worker_stats[0].samples_drawn, out.total_samples);
    }

    #[test]
    fn degenerate_data_short_circuits_without_block_execution() {
        let data = BlockSet::from_values(vec![3.25; 5_000], 5);
        let mut rng = StdRng::seed_from_u64(6);
        let out = run(
            &data,
            &config(0.1),
            RateSpec::Derived,
            &SequentialScheduler,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.estimate, 3.25);
        assert!(out.blocks.is_empty());
        assert!(out.worker_stats.is_empty());
        assert_eq!(out.total_samples, 0);
    }

    #[test]
    fn deadline_budget_flows_through_as_time_limited() {
        let ds = normal_dataset(100.0, 20.0, 400_000, 10, 64);
        let cfg = config(0.1); // demands far more than the budget below
        let budget = 60_000;
        let scheduler = DeadlineScheduler::new(SequentialScheduler, budget);
        let mut rng = StdRng::seed_from_u64(7);
        let out = run(&ds.blocks, &cfg, RateSpec::Derived, &scheduler, &mut rng).unwrap();
        assert!(out.time_limited);
        // The calculation phase gets whatever the pilots left over, so
        // the total draw (pilots + calc) lands on the budget.
        assert!(
            (out.total_samples_with_pilots() as i64 - budget as i64).abs() <= 10,
            "capped run drew {} of budget {budget}",
            out.total_samples_with_pilots()
        );
        assert!(out.total_samples > 0, "some calculation still ran");
        assert!((out.estimate - ds.true_mean).abs() < 3.0);
    }
}
