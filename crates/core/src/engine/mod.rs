//! The execution engine: the paper's Pre-estimation → per-block
//! Calculation → Summarization pipeline, owned once.
//!
//! Four call sites used to re-implement this pipeline — the sequential
//! [`crate::IslaAggregator`], the distributed coordinator, the
//! time-constrained path, and the query executor. They are now thin
//! wrappers over this module's layers:
//!
//! * **Plan** ([`QueryPlan`]) — validated config + pre-estimate + shift +
//!   boundaries + resolved sampling rate. Build it with pilots
//!   ([`QueryPlan::prepare`]) or from a cached pre-estimate
//!   ([`QueryPlan::from_pre_estimate`] via [`PreEstimateCache`], the
//!   repeated-query fast path);
//! * **Schedule** ([`BlockScheduler`]) — where the per-block Calculation
//!   phase runs: [`SequentialScheduler`], [`PooledScheduler`] (crossbeam
//!   worker pool), or [`DeadlineScheduler`] (budget capping as an
//!   admission policy around any inner scheduler). Per-block seeds are
//!   derived once ([`derive_block_seeds`]), so every scheduler returns
//!   the bit-identical answer for the same RNG stream;
//! * **Merge** ([`PartialAggregate`]) — associative per-block state that
//!   combines in any completion order and finalizes into the
//!   size-weighted Summarization answer.
//!
//! Sampling runs through the storage layer's **batch kernels**
//! ([`isla_storage::kernel`]): the per-block Calculation phase draws
//! whole batches on reusable thread-local buffers
//! (`DataBlock::sample_batch` / `sample_rows_batch`), bit-identical in
//! values and RNG stream to the scalar loops they replaced — so the
//! determinism guarantees above survive the batching unchanged (pinned
//! by `tests/kernel_identity.rs`).
//!
//! The [`rows`] module generalizes the pipeline to the **row model**:
//! a [`RowSpec`] (aggregated column + compiled predicate + group key)
//! plans per group ([`RowPlan`], with selectivity estimated by the
//! pilots), executes through the same schedulers, and merges through
//! the per-group [`GroupedPartial`] — so `WHERE` and `GROUP BY` run
//! with the same determinism guarantees as the scalar path.
//!
//! ```
//! use isla_core::engine::{self, RateSpec, SequentialScheduler, PooledScheduler};
//! use isla_core::IslaConfig;
//! use isla_storage::BlockSet;
//! use rand::SeedableRng;
//!
//! let data = BlockSet::from_values(
//!     (0..60_000).map(|i| 50.0 + (i % 11) as f64).collect(),
//!     8,
//! );
//! let config = IslaConfig::builder().precision(0.5).build().unwrap();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let sequential = engine::run(&data, &config, RateSpec::Derived, &SequentialScheduler, &mut rng).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let pooled_scheduler = PooledScheduler::new(4).unwrap();
//! let pooled = engine::run(&data, &config, RateSpec::Derived, &pooled_scheduler, &mut rng).unwrap();
//! assert_eq!(sequential.estimate, pooled.estimate); // scheduling never changes the answer
//! ```

pub mod cache;
pub mod partial;
pub mod plan;
pub mod recovery;
pub mod rows;
pub mod scheduler;
pub mod seed;

pub use cache::{
    CacheKey, CacheLookup, CacheStats, EpochCacheStats, PreEstimateCache, RowCacheLookup,
};
pub use partial::{FinalAggregate, GroupedAggregate, GroupedPartial, PartialAggregate};
pub use plan::{QueryPlan, RateSpec};
pub use recovery::{
    run_block_recovering, Backoff, BlockFailure, Degradation, FailureMode, RecoveryPolicy,
    RetryPolicy,
};
pub use rows::{
    execute_row_block, finish_row_pilot_fold, fold_row_pilot_segment, row_pre_estimate,
    row_pre_estimate_capped, row_pre_estimate_capped_with, row_pre_estimate_with, run_row_plan,
    run_row_plan_with, run_rows, scan_exact_groups, GroupEstimate, GroupExact, GroupPlan, GroupPre,
    GroupedEngineResult, RowBlockOutcome, RowGroupOutcome, RowPilotFold, RowPlan, RowPreEstimate,
    RowSpec,
};
pub use scheduler::{
    execute_planned_block, scan_blocks, scan_blocks_recovering, BlockExecution, BlockScheduler,
    DeadlineScheduler, EngineRun, PooledScheduler, SequentialScheduler, WorkerStats,
};
pub use seed::{derive_block_seeds, seeded_rng, stream_seed};

use rand::RngCore;

use isla_storage::BlockSet;

use crate::block_exec::BlockOutcome;
use crate::config::IslaConfig;
use crate::error::IslaError;
use crate::pre_estimation::PreEstimate;

/// The engine's complete output: the combined answer plus everything the
/// wrapper APIs expose (pre-estimate, shift, per-block outcomes, worker
/// statistics, deadline capping).
#[derive(Debug, Clone)]
pub struct EngineResult {
    /// The approximate AVG — the headline answer.
    pub estimate: f64,
    /// The approximate SUM, `estimate × M`.
    pub sum_estimate: f64,
    /// Total rows `M` across blocks.
    pub data_size: u64,
    /// Pre-estimation output backing the plan.
    pub pre: PreEstimate,
    /// Negative-data translation applied (0 when none).
    pub shift: f64,
    /// Per-block outcomes, in block order.
    pub blocks: Vec<BlockOutcome>,
    /// Calculation-phase samples drawn (excludes pilots).
    pub total_samples: u64,
    /// Per-worker statistics (empty for degenerate short-circuits).
    pub worker_stats: Vec<WorkerStats>,
    /// Whether an admission policy (deadline budget) capped the plan.
    pub time_limited: bool,
    /// Present when a best-effort run dropped failed blocks: the
    /// failure accounting and the honestly widened half-width. `None`
    /// means full coverage — the answer is exactly the strict answer.
    pub degradation: Option<Degradation>,
}

impl EngineResult {
    /// Samples drawn including the pre-estimation pilots.
    pub fn total_samples_with_pilots(&self) -> u64 {
        self.total_samples + self.pre.sigma_pilot_used + self.pre.sketch_pilot_used
    }
}

/// Prepares a plan on `data` (running the pilots) and executes it on
/// `scheduler` — the whole pipeline in one call.
///
/// # Errors
///
/// Invalid configuration/rate, pre-estimation failures, or the first
/// block failure.
pub fn run(
    data: &BlockSet,
    config: &IslaConfig,
    rate: RateSpec,
    scheduler: &dyn BlockScheduler,
    rng: &mut dyn RngCore,
) -> Result<EngineResult, IslaError> {
    let plan = QueryPlan::prepare(data, config, rate, rng)?;
    run_plan(plan, data, scheduler, rng)
}

/// Executes an already-prepared plan on `scheduler`.
///
/// The scheduler's admission policy runs first (deadline capping), then
/// per-block seeds are derived from `rng` — one `next_u64` per block in
/// block order — and the Calculation phase fans out. Degenerate plans
/// (σ = 0) short-circuit to the pinned answer without touching blocks.
///
/// # Errors
///
/// The first block failure, or [`IslaError::InsufficientData`] when the
/// blocks carry no rows.
pub fn run_plan(
    plan: QueryPlan,
    data: &BlockSet,
    scheduler: &dyn BlockScheduler,
    rng: &mut dyn RngCore,
) -> Result<EngineResult, IslaError> {
    run_plan_with(plan, data, scheduler, &RecoveryPolicy::strict(), rng)
}

/// [`run_plan`] under an explicit [`RecoveryPolicy`].
///
/// Under [`FailureMode::BestEffort`], blocks that exhaust their retry
/// budget are dropped: the answer finalizes over the survivors (the
/// size-weighted combine re-normalizes inherently) and
/// [`EngineResult::degradation`] reports the failures, surviving
/// coverage, and widened half-width. Seeds are derived for *every*
/// block before execution, so surviving blocks draw the identical
/// samples a full run would have — a degraded answer is bit-identical
/// across schedulers, worker counts, and reruns.
///
/// # Errors
///
/// Strict mode: the first block failure. Best-effort: only
/// [`IslaError::InsufficientData`] when *every* block failed (no
/// surviving coverage to estimate from).
pub fn run_plan_with(
    plan: QueryPlan,
    data: &BlockSet,
    scheduler: &dyn BlockScheduler,
    recovery: &RecoveryPolicy,
    rng: &mut dyn RngCore,
) -> Result<EngineResult, IslaError> {
    let (plan, time_limited) = scheduler.admit(plan, data);
    let data_size = plan.data_size();
    if plan.is_degenerate() {
        let pre = plan.pre().clone();
        return Ok(EngineResult {
            estimate: pre.sketch0,
            sum_estimate: pre.sketch0 * data_size as f64,
            data_size,
            pre,
            shift: 0.0,
            blocks: Vec::new(),
            total_samples: 0,
            worker_stats: Vec::new(),
            time_limited: false,
            degradation: None,
        });
    }
    let seeds = derive_block_seeds(rng, data.block_count());
    let exec = BlockExecution {
        plan: &plan,
        data,
        seeds: &seeds,
        recovery,
    };
    let out = scheduler.execute(&exec)?;
    if out.failures.len() >= data.block_count() {
        return Err(IslaError::InsufficientData(
            "every block failed during best-effort execution; no surviving coverage".to_string(),
        ));
    }
    let combined = out.partial.finalize()?;
    let degradation = if out.failures.is_empty() {
        None
    } else {
        let survivors: Vec<(f64, u64)> =
            combined.blocks.iter().map(|b| (b.answer, b.rows)).collect();
        let lost_rows: u64 = out
            .failures
            .iter()
            .map(|f| data.block(f.block_id).len())
            .sum();
        let cfg = plan.config();
        Some(Degradation::assess(
            out.failures,
            &survivors,
            lost_rows,
            cfg.precision,
            cfg.confidence,
        ))
    };
    Ok(EngineResult {
        estimate: combined.estimate,
        sum_estimate: combined.estimate * data_size as f64,
        data_size,
        pre: plan.pre().clone(),
        shift: plan.shift(),
        blocks: combined.blocks,
        total_samples: combined.total_samples,
        worker_stats: out.worker_stats,
        time_limited,
        degradation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    #[test]
    fn run_produces_the_classic_pipeline_output() {
        let ds = normal_dataset(100.0, 20.0, 300_000, 10, 63);
        let mut rng = StdRng::seed_from_u64(5);
        let out = run(
            &ds.blocks,
            &config(0.5),
            RateSpec::Derived,
            &SequentialScheduler,
            &mut rng,
        )
        .unwrap();
        assert!((out.estimate - ds.true_mean).abs() < 1.0);
        assert_eq!(out.blocks.len(), 10);
        assert_eq!(out.data_size, 300_000);
        assert!((out.sum_estimate - out.estimate * 300_000.0).abs() < 1e-3);
        assert!(out.total_samples > 0);
        assert!(out.total_samples_with_pilots() > out.total_samples);
        assert!(!out.time_limited);
        assert_eq!(out.worker_stats.len(), 1);
        assert_eq!(out.worker_stats[0].samples_drawn, out.total_samples);
    }

    #[test]
    fn degenerate_data_short_circuits_without_block_execution() {
        let data = BlockSet::from_values(vec![3.25; 5_000], 5);
        let mut rng = StdRng::seed_from_u64(6);
        let out = run(
            &data,
            &config(0.1),
            RateSpec::Derived,
            &SequentialScheduler,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.estimate, 3.25);
        assert!(out.blocks.is_empty());
        assert!(out.worker_stats.is_empty());
        assert_eq!(out.total_samples, 0);
    }

    #[test]
    fn best_effort_degrades_and_widens_instead_of_failing() {
        use isla_storage::FaultPlan;

        let ds = normal_dataset(100.0, 20.0, 300_000, 10, 65);
        let cfg = config(0.5);
        let faulty = FaultPlan::new(9).lose(0.25).arm(&ds.blocks);

        // Strict mode fails outright on the same faults.
        let mut rng = StdRng::seed_from_u64(8);
        let plan = QueryPlan::prepare(&ds.blocks, &cfg, RateSpec::Derived, &mut rng).unwrap();
        assert!(run_plan(
            plan.clone(),
            &faulty,
            &SequentialScheduler,
            &mut rng.clone()
        )
        .is_err());

        // Best-effort drops the lost blocks and reports the damage.
        let out = run_plan_with(
            plan.clone(),
            &faulty,
            &SequentialScheduler,
            &RecoveryPolicy::best_effort(RetryPolicy::attempts(2)),
            &mut rng,
        )
        .unwrap();
        let degradation = out.degradation.expect("blocks were lost");
        assert!(!degradation.failures.is_empty());
        assert!(degradation.coverage < 1.0 && degradation.coverage > 0.0);
        assert!(degradation.widened_half_width > degradation.base_half_width);
        assert_eq!(degradation.base_half_width, 0.5);
        assert_eq!(
            out.blocks.len() + degradation.failures.len(),
            10,
            "every block either survived or is accounted as failed"
        );
        // Survivors of an i.i.d. dataset still estimate the mean.
        assert!((out.estimate - ds.true_mean).abs() < 2.0);

        // A fault-free best-effort run reports no degradation and the
        // bit-identical strict answer.
        let mut rng = StdRng::seed_from_u64(8);
        let plan2 = QueryPlan::prepare(&ds.blocks, &cfg, RateSpec::Derived, &mut rng).unwrap();
        let mut rng_a = rng.clone();
        let strict = run_plan(plan2.clone(), &ds.blocks, &SequentialScheduler, &mut rng_a).unwrap();
        let best = run_plan_with(
            plan2,
            &ds.blocks,
            &SequentialScheduler,
            &RecoveryPolicy::best_effort(RetryPolicy::attempts(3)),
            &mut rng,
        )
        .unwrap();
        assert!(best.degradation.is_none());
        assert_eq!(strict.estimate, best.estimate);
    }

    #[test]
    fn total_loss_is_an_error_not_a_silent_zero() {
        use isla_storage::FaultPlan;

        let ds = normal_dataset(100.0, 20.0, 60_000, 4, 66);
        let faulty = FaultPlan::new(3).lose(1.0).arm(&ds.blocks);
        let mut rng = StdRng::seed_from_u64(9);
        let plan =
            QueryPlan::prepare(&ds.blocks, &config(0.5), RateSpec::Derived, &mut rng).unwrap();
        let r = run_plan_with(
            plan,
            &faulty,
            &SequentialScheduler,
            &RecoveryPolicy::best_effort(RetryPolicy::default()),
            &mut rng,
        );
        assert!(matches!(r, Err(IslaError::InsufficientData(_))));
    }

    #[test]
    fn deadline_budget_flows_through_as_time_limited() {
        let ds = normal_dataset(100.0, 20.0, 400_000, 10, 64);
        let cfg = config(0.1); // demands far more than the budget below
        let budget = 60_000;
        let scheduler = DeadlineScheduler::new(SequentialScheduler, budget);
        let mut rng = StdRng::seed_from_u64(7);
        let out = run(&ds.blocks, &cfg, RateSpec::Derived, &scheduler, &mut rng).unwrap();
        assert!(out.time_limited);
        // The calculation phase gets whatever the pilots left over, so
        // the total draw (pilots + calc) lands on the budget.
        assert!(
            (out.total_samples_with_pilots() as i64 - budget as i64).abs() <= 10,
            "capped run drew {} of budget {budget}",
            out.total_samples_with_pilots()
        );
        assert!(out.total_samples > 0, "some calculation still ran");
        assert!((out.estimate - ds.true_mean).abs() < 3.0);
    }
}
