//! Pre-estimation caching for repeated queries.
//!
//! The heavy-traffic scenario: the same query shape arrives millions of
//! times against the same catalog table. The pilots (σ estimation + the
//! relaxed-precision sketch) are the only phase whose output depends
//! solely on `(data, config)` — so a [`PreEstimateCache`] keyed by
//! `(table, column, config, data shape)` lets every repeat skip the
//! pilot phase entirely and go straight to planning.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::RngCore;

use isla_storage::BlockSet;

use crate::config::IslaConfig;
use crate::error::IslaError;
use crate::pre_estimation::{
    finish_pilot_fold, fold_pilot_segment, pre_estimate_with, PilotFold, PreEstimate,
};

use super::recovery::RecoveryPolicy;
use super::rows::{
    finish_row_pilot_fold, fold_row_pilot_segment, row_pre_estimate_with, RowPilotFold,
    RowPreEstimate, RowSpec,
};

/// A cache key: the catalog coordinates of a column, the configuration
/// fingerprint, the data's shape (row count + block count), and the
/// query shape (predicate + group-by fingerprint).
///
/// Folding the data shape in means a re-registered table of a different
/// size misses instead of serving a stale σ̂/rate computed for the old
/// data. Folding the *query* shape in means a pre-estimate computed for
/// an unfiltered query can never be reused for a filtered or grouped
/// one — their selectivities, sketches, and rates describe different
/// populations. A same-shape content change is invisible to the key —
/// callers that mutate data in place must invalidate explicitly
/// ([`PreEstimateCache::invalidate`] / [`PreEstimateCache::clear`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    table: String,
    column: String,
    config: u64,
    rows: u64,
    blocks: usize,
    query_shape: u64,
}

/// Maximum entries the row-estimate map holds. Query shapes embed
/// predicate *literals*, so a workload with per-request literals
/// (`WHERE ts > <now>`) would otherwise grow the map without bound;
/// past the cap an arbitrary entry is evicted per insert.
const MAX_ROW_ENTRIES: usize = 1_024;

impl CacheKey {
    /// Builds a key for `table.column` under `config`, bound to `data`'s
    /// shape, for the plain (unfiltered, ungrouped) query shape.
    pub fn new(table: &str, column: &str, config: &IslaConfig, data: &BlockSet) -> Self {
        Self {
            table: table.to_string(),
            column: column.to_string(),
            config: config.fingerprint(),
            rows: data.total_len(),
            blocks: data.block_count(),
            query_shape: 0,
        }
    }

    /// Binds the key to a row-model query shape (the
    /// [`RowSpec::fingerprint`] of its predicate + group-by + aggregated
    /// column), so filtered/grouped estimates key separately from plain
    /// ones and from each other.
    pub fn with_row_shape(mut self, shape: u64) -> Self {
        self.query_shape = shape;
        self
    }

    /// The key with its data-shape fields zeroed: the *lineage* of a
    /// column under a config and query shape, stable across appends.
    /// Epoch-layer entries key by lineage because an append changes the
    /// shape (so exact keys would always miss) while leaving every
    /// already-folded segment's contribution valid — the lineage is the
    /// identity that survives growth.
    pub fn lineage(&self) -> Self {
        Self {
            rows: 0,
            blocks: 0,
            ..self.clone()
        }
    }

    /// A stable 64-bit digest of the key — the seed material for
    /// deterministic pilot derivation: a serving layer that seeds the
    /// pilot RNG from `digest() ⊕ salt` makes the cached entry a pure
    /// function of the key, so racing first computations are idempotent
    /// and a query's answer no longer depends on whether *its own* RNG
    /// paid for the pilots (hit) or not (miss).
    pub fn digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Hit/miss counters, observable by callers (e.g. integration tests and
/// serving dashboards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (pilot phase skipped).
    pub hits: u64,
    /// Lookups that ran the pilots and populated the cache.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Epoch-path counters: how lookups against appendable sets resolved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochCacheStats {
    /// Entry covered the set's current epoch exactly — no folding at all.
    pub exact_hits: u64,
    /// Entry was valid for an older epoch — only the delta segments were
    /// folded on top of the cached pilot state.
    pub delta_folds: u64,
    /// No usable entry — every segment was folded from scratch.
    pub cold_folds: u64,
}

/// A cached epoch-fold: the pilot fold state and finished estimate as of
/// `epoch`, plus the shape `(blocks, rows)` the set had then — checked
/// against the set's [`isla_storage::EpochMark`] history on lookup so a
/// re-registered (different-lineage-content) set can never resume a fold
/// that doesn't describe its blocks.
#[derive(Debug, Clone)]
struct EpochEntry {
    epoch: u64,
    blocks: usize,
    rows: u64,
    fold: PilotFold,
    pre: PreEstimate,
}

/// Row-model analog of [`EpochEntry`].
#[derive(Debug, Clone)]
struct RowEpochEntry {
    epoch: u64,
    blocks: usize,
    rows: u64,
    fold: RowPilotFold,
    pre: RowPreEstimate,
}

/// The result of one cache lookup.
#[derive(Debug, Clone)]
pub struct CacheLookup {
    /// The pre-estimate (cached or freshly computed).
    pub pre: PreEstimate,
    /// Whether the pilots were skipped (`true` on a cache hit).
    pub hit: bool,
}

/// The result of one row-model cache lookup.
#[derive(Debug, Clone)]
pub struct RowCacheLookup {
    /// The row pre-estimate (cached or freshly computed).
    pub pre: RowPreEstimate,
    /// Whether the pilots were skipped (`true` on a cache hit).
    pub hit: bool,
}

/// A thread-safe cache of [`PreEstimate`]s (scalar queries) and
/// [`RowPreEstimate`]s (filtered/grouped queries) keyed by [`CacheKey`].
///
/// The two populations never alias: scalar keys carry query shape 0 and
/// live in the scalar map; row keys carry the spec's fingerprint and
/// live in the row map. Hit/miss counters are shared.
#[derive(Debug, Default)]
pub struct PreEstimateCache {
    entries: Mutex<HashMap<CacheKey, PreEstimate>>,
    row_entries: Mutex<HashMap<CacheKey, RowPreEstimate>>,
    epoch_entries: Mutex<HashMap<CacheKey, EpochEntry>>,
    row_epoch_entries: Mutex<HashMap<CacheKey, RowEpochEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    epoch_exact: AtomicU64,
    epoch_delta: AtomicU64,
    epoch_cold: AtomicU64,
}

impl PreEstimateCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached pre-estimate for `key`, or runs the pilots on
    /// `data` and caches the result.
    ///
    /// # Errors
    ///
    /// Pre-estimation failures (the cache is left untouched).
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        data: &BlockSet,
        config: &IslaConfig,
        rng: &mut dyn RngCore,
    ) -> Result<CacheLookup, IslaError> {
        self.get_or_compute_with(key, data, config, &RecoveryPolicy::strict(), rng)
    }

    /// [`PreEstimateCache::get_or_compute`] under an explicit
    /// [`RecoveryPolicy`]: a miss runs the pilots through
    /// [`pre_estimate_with`], so best-effort sessions survive failing
    /// blocks during pre-estimation. A best-effort entry describes the
    /// plan's surviving data and is served to later lookups of the same
    /// key regardless of their mode — keys are config-fingerprinted, and
    /// sessions hold one policy for their lifetime, so entries never mix
    /// modes within a session.
    ///
    /// # Errors
    ///
    /// Pre-estimation failures (the cache is left untouched).
    pub fn get_or_compute_with(
        &self,
        key: CacheKey,
        data: &BlockSet,
        config: &IslaConfig,
        recovery: &RecoveryPolicy,
        rng: &mut dyn RngCore,
    ) -> Result<CacheLookup, IslaError> {
        if let Some(pre) = self.entries.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(CacheLookup { pre, hit: true });
        }
        let pre = pre_estimate_with(data, config, recovery, rng)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().insert(key, pre.clone());
        Ok(CacheLookup { pre, hit: false })
    }

    /// Returns the cached row pre-estimate for `key`, or runs the
    /// row-model pilots on `data` and caches the result.
    ///
    /// `key` should carry the spec's [`RowSpec::fingerprint`] (via
    /// [`CacheKey::with_row_shape`]) so distinct predicates/groupings
    /// key separately.
    ///
    /// # Errors
    ///
    /// Row pre-estimation failures (the cache is left untouched).
    pub fn get_or_compute_rows(
        &self,
        key: CacheKey,
        data: &BlockSet,
        config: &IslaConfig,
        spec: &RowSpec,
        rng: &mut dyn RngCore,
    ) -> Result<RowCacheLookup, IslaError> {
        self.get_or_compute_rows_with(key, data, config, spec, &RecoveryPolicy::strict(), rng)
    }

    /// [`PreEstimateCache::get_or_compute_rows`] under an explicit
    /// [`RecoveryPolicy`] (see
    /// [`PreEstimateCache::get_or_compute_with`]).
    ///
    /// # Errors
    ///
    /// Row pre-estimation failures (the cache is left untouched).
    pub fn get_or_compute_rows_with(
        &self,
        key: CacheKey,
        data: &BlockSet,
        config: &IslaConfig,
        spec: &RowSpec,
        recovery: &RecoveryPolicy,
        rng: &mut dyn RngCore,
    ) -> Result<RowCacheLookup, IslaError> {
        if let Some(pre) = self.row_entries.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(RowCacheLookup { pre, hit: true });
        }
        let pre = row_pre_estimate_with(data, config, spec, recovery, rng)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.row_entries.lock();
        if entries.len() >= MAX_ROW_ENTRIES {
            // Arbitrary eviction bounds the map when query shapes carry
            // per-request literals; any victim is merely a future miss.
            if let Some(victim) = entries.keys().next().cloned() {
                entries.remove(&victim);
            }
        }
        entries.insert(key, pre.clone());
        drop(entries);
        Ok(RowCacheLookup { pre, hit: false })
    }

    /// Epoch-aware lookup for appendable sets: returns the cached
    /// estimate when it covers `data`'s current epoch, resumes the
    /// cached pilot fold over only the segments sealed since the entry's
    /// epoch when it is older but still valid, and cold-folds every
    /// segment otherwise. Entries key by [`CacheKey::lineage`] so an
    /// append never orphans them.
    ///
    /// Each segment's pilots draw from an RNG seeded purely by
    /// `(lineage digest, salt, segment index)`, so a delta-resumed fold
    /// is bit-identical to a cold fold of the same history — callers
    /// never pass an RNG, and a hit and a miss leave no stream anywhere.
    ///
    /// # Errors
    ///
    /// Pre-estimation failures (the cache is left untouched).
    pub fn get_or_compute_epoch(
        &self,
        key: CacheKey,
        data: &BlockSet,
        config: &IslaConfig,
        salt: u64,
    ) -> Result<CacheLookup, IslaError> {
        let epoch = data.epoch();
        let blocks = data.block_count();
        let rows = data.total_len();
        let lineage = key.lineage();
        let cached = self.epoch_entries.lock().get(&lineage).cloned();
        let (mut fold, resume) = match cached {
            Some(e) if e.epoch == epoch && e.blocks == blocks && e.rows == rows => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.epoch_exact.fetch_add(1, Ordering::Relaxed);
                return Ok(CacheLookup {
                    pre: e.pre,
                    hit: true,
                });
            }
            Some(e)
                if entry_resumes(e.epoch, e.blocks, e.rows, epoch, data)
                    && e.fold.segments() == e.epoch + 1 =>
            {
                self.epoch_delta.fetch_add(1, Ordering::Relaxed);
                (e.fold, e.epoch + 1)
            }
            _ => {
                self.epoch_cold.fetch_add(1, Ordering::Relaxed);
                (PilotFold::new(), 0)
            }
        };
        let digest = lineage.digest();
        let mut start = 0usize;
        for (si, mark) in data.epoch_marks().iter().enumerate() {
            if si as u64 >= resume {
                fold_pilot_segment(&mut fold, data, start..mark.blocks, config, digest, salt)?;
            }
            start = mark.blocks;
        }
        let pre = finish_pilot_fold(&fold, data, config)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.epoch_entries.lock();
        match entries.get(&lineage) {
            // A racing lookup against a *newer* snapshot already folded
            // further; keep the longer fold — ours is merely a prefix.
            Some(existing) if existing.epoch > epoch => {}
            _ => {
                entries.insert(
                    lineage,
                    EpochEntry {
                        epoch,
                        blocks,
                        rows,
                        fold,
                        pre: pre.clone(),
                    },
                );
            }
        }
        drop(entries);
        Ok(CacheLookup { pre, hit: false })
    }

    /// Row-model analog of [`PreEstimateCache::get_or_compute_epoch`]:
    /// epoch-aware lookup for filtered/grouped queries over appendable
    /// sets, keyed by the lineage of a shape-bound key (carry the spec's
    /// fingerprint via [`CacheKey::with_row_shape`]).
    ///
    /// # Errors
    ///
    /// Row pre-estimation failures (the cache is left untouched).
    pub fn get_or_compute_rows_epoch(
        &self,
        key: CacheKey,
        data: &BlockSet,
        config: &IslaConfig,
        spec: &RowSpec,
        salt: u64,
    ) -> Result<RowCacheLookup, IslaError> {
        let epoch = data.epoch();
        let blocks = data.block_count();
        let rows = data.total_len();
        let lineage = key.lineage();
        let cached = self.row_epoch_entries.lock().get(&lineage).cloned();
        let (mut fold, resume) = match cached {
            Some(e) if e.epoch == epoch && e.blocks == blocks && e.rows == rows => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.epoch_exact.fetch_add(1, Ordering::Relaxed);
                return Ok(RowCacheLookup {
                    pre: e.pre,
                    hit: true,
                });
            }
            Some(e)
                if entry_resumes(e.epoch, e.blocks, e.rows, epoch, data)
                    && e.fold.segments() == e.epoch + 1 =>
            {
                self.epoch_delta.fetch_add(1, Ordering::Relaxed);
                (e.fold, e.epoch + 1)
            }
            _ => {
                self.epoch_cold.fetch_add(1, Ordering::Relaxed);
                (RowPilotFold::new(), 0)
            }
        };
        let digest = lineage.digest();
        let mut start = 0usize;
        for (si, mark) in data.epoch_marks().iter().enumerate() {
            if si as u64 >= resume {
                fold_row_pilot_segment(
                    &mut fold,
                    data,
                    start..mark.blocks,
                    mark.rows,
                    config,
                    spec,
                    digest,
                    salt,
                )?;
            }
            start = mark.blocks;
        }
        let pre = finish_row_pilot_fold(&fold, rows, config)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.row_epoch_entries.lock();
        match entries.get(&lineage) {
            Some(existing) if existing.epoch > epoch => {}
            _ => {
                if entries.len() >= MAX_ROW_ENTRIES && !entries.contains_key(&lineage) {
                    // Same bound as the exact row map: per-request
                    // predicate literals must not grow this without end.
                    if let Some(victim) = entries.keys().next().cloned() {
                        entries.remove(&victim);
                    }
                }
                entries.insert(
                    lineage,
                    RowEpochEntry {
                        epoch,
                        blocks,
                        rows,
                        fold,
                        pre: pre.clone(),
                    },
                );
            }
        }
        drop(entries);
        Ok(RowCacheLookup { pre, hit: false })
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Whether an entry exists for exactly this key (scalar or row map,
    /// decided by the key's query shape). A pure probe: no counters
    /// move, nothing is computed — the tool for pinning *which* key a
    /// caller populated (e.g. that an executor cached under its final
    /// config, sketch-σ flag included, not a pre-toggle one).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.lock().contains_key(key) || self.row_entries.lock().contains_key(key)
    }

    /// Number of cached entries (scalar + row).
    pub fn len(&self) -> usize {
        self.entries.lock().len() + self.row_entries.lock().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current epoch-path counters.
    pub fn epoch_stats(&self) -> EpochCacheStats {
        EpochCacheStats {
            exact_hits: self.epoch_exact.load(Ordering::Relaxed),
            delta_folds: self.epoch_delta.load(Ordering::Relaxed),
            cold_folds: self.epoch_cold.load(Ordering::Relaxed),
        }
    }

    /// Drops one entry (e.g. after the underlying table changed).
    ///
    /// Note a filtered/grouped entry is only reachable with its exact
    /// query-shape fingerprint; after mutating a table in place, prefer
    /// [`PreEstimateCache::invalidate_table`], which drops *every*
    /// shape's entries for that table.
    pub fn invalidate(&self, key: &CacheKey) {
        self.entries.lock().remove(key);
        self.row_entries.lock().remove(key);
        let lineage = key.lineage();
        self.epoch_entries.lock().remove(&lineage);
        self.row_epoch_entries.lock().remove(&lineage);
    }

    /// Drops every entry — scalar and row, all query shapes, exact and
    /// epoch maps — for a table, the invalidation to use after mutating
    /// its data in place. Appends never need this: the epoch layer
    /// validates its entries against the set's mark history itself.
    pub fn invalidate_table(&self, table: &str) {
        self.entries.lock().retain(|k, _| k.table != table);
        self.row_entries.lock().retain(|k, _| k.table != table);
        self.epoch_entries.lock().retain(|k, _| k.table != table);
        self.row_epoch_entries
            .lock()
            .retain(|k, _| k.table != table);
    }

    /// Drops every entry. Counters are preserved.
    pub fn clear(&self) {
        self.entries.lock().clear();
        self.row_entries.lock().clear();
        self.epoch_entries.lock().clear();
        self.row_epoch_entries.lock().clear();
    }
}

/// Whether a cached fold at `entry_epoch` with shape `(entry_blocks,
/// entry_rows)` can be resumed against `data` at `current_epoch`: it
/// must describe a strictly earlier epoch whose recorded mark matches —
/// a mismatch means the set is a different lineage (re-registered,
/// projected differently) and the fold's segments do not describe these
/// blocks.
fn entry_resumes(
    entry_epoch: u64,
    entry_blocks: usize,
    entry_rows: u64,
    current_epoch: u64,
    data: &BlockSet,
) -> bool {
    entry_epoch < current_epoch
        && usize::try_from(entry_epoch)
            .ok()
            .and_then(|i| data.epoch_marks().get(i))
            .is_some_and(|m| m.blocks == entry_blocks && m.rows == entry_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    #[test]
    fn second_lookup_hits_and_skips_the_pilots() {
        let ds = normal_dataset(100.0, 20.0, 100_000, 10, 60);
        let cache = PreEstimateCache::new();
        let cfg = config(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let first = cache
            .get_or_compute(
                CacheKey::new("t", "c", &cfg, &ds.blocks),
                &ds.blocks,
                &cfg,
                &mut rng,
            )
            .unwrap();
        assert!(!first.hit);
        let mut rng = StdRng::seed_from_u64(2);
        let second = cache
            .get_or_compute(
                CacheKey::new("t", "c", &cfg, &ds.blocks),
                &ds.blocks,
                &cfg,
                &mut rng,
            )
            .unwrap();
        assert!(second.hit);
        assert_eq!(second.pre, first.pre, "hit returns the cached estimate");
        // A hit consumes no randomness: the stream is exactly where the
        // seed left it.
        let mut check = StdRng::seed_from_u64(2);
        assert_eq!(rng.next_u64(), check.next_u64());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.stats().lookups(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_coordinates_or_configs_miss() {
        let ds = normal_dataset(100.0, 20.0, 50_000, 5, 61);
        let cache = PreEstimateCache::new();
        let cfg = config(0.5);
        let tighter = config(0.1);
        let mut rng = StdRng::seed_from_u64(3);
        for key in [
            CacheKey::new("t", "a", &cfg, &ds.blocks),
            CacheKey::new("t", "b", &cfg, &ds.blocks),
            CacheKey::new("u", "a", &cfg, &ds.blocks),
            CacheKey::new("t", "a", &tighter, &ds.blocks),
        ] {
            let lookup = cache
                .get_or_compute(key, &ds.blocks, &cfg, &mut rng)
                .unwrap();
            assert!(!lookup.hit);
        }
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 4 });
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn reshaped_data_misses_instead_of_serving_stale_estimates() {
        // The same catalog coordinates over data of a different size (or
        // block layout) must not reuse the old σ̂/rate.
        let small = normal_dataset(100.0, 20.0, 50_000, 5, 65);
        let grown = normal_dataset(100.0, 20.0, 80_000, 5, 65);
        let cache = PreEstimateCache::new();
        let cfg = config(0.5);
        let mut rng = StdRng::seed_from_u64(5);
        cache
            .get_or_compute(
                CacheKey::new("t", "c", &cfg, &small.blocks),
                &small.blocks,
                &cfg,
                &mut rng,
            )
            .unwrap();
        let after_growth = cache
            .get_or_compute(
                CacheKey::new("t", "c", &cfg, &grown.blocks),
                &grown.blocks,
                &cfg,
                &mut rng,
            )
            .unwrap();
        assert!(!after_growth.hit, "grown table must re-run the pilots");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn unfiltered_pre_estimates_never_serve_filtered_queries() {
        // Regression: before the query-shape fingerprint, a cached
        // unfiltered pre-estimate keyed only by (table, column, config,
        // data shape) would have been served to a filtered query over
        // the same column — whose population (selectivity, sketch,
        // rate) is entirely different.
        use crate::engine::rows::RowSpec;
        use isla_storage::{CmpOp, ColumnPredicate, RowFilter, RowsBlock};

        let n = 50_000usize;
        let x: Vec<f64> = isla_datagen::normal_values(100.0, 20.0, n, 66);
        let y: Vec<f64> = x.iter().map(|v| v * 0.5).collect();
        let data = RowsBlock::split(vec![x, y], 5);
        let cache = PreEstimateCache::new();
        let cfg = config(0.5);

        // The unfiltered (scalar) query populates the scalar map.
        let mut rng = StdRng::seed_from_u64(6);
        let plain = cache
            .get_or_compute(CacheKey::new("t", "x", &cfg, &data), &data, &cfg, &mut rng)
            .unwrap();
        assert!(!plain.hit);

        // The filtered query over the same column must MISS, not reuse
        // the unfiltered estimate.
        let spec = RowSpec {
            agg_column: 0,
            filter: RowFilter::new(vec![ColumnPredicate {
                column: 1,
                op: CmpOp::Gt,
                value: 50.0,
            }]),
            group_by: None,
        };
        let key = CacheKey::new("t", "x", &cfg, &data).with_row_shape(spec.fingerprint());
        let filtered = cache
            .get_or_compute_rows(key.clone(), &data, &cfg, &spec, &mut rng)
            .unwrap();
        assert!(!filtered.hit, "filtered query must re-run the pilots");
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        // The filtered population really is different: roughly half the
        // rows match.
        assert!(filtered.pre.selectivity < 0.7 && filtered.pre.selectivity > 0.3);

        // Repeating the same filtered shape hits; a *different*
        // predicate misses again.
        let repeat = cache
            .get_or_compute_rows(key, &data, &cfg, &spec, &mut rng)
            .unwrap();
        assert!(repeat.hit);
        let other_spec = RowSpec {
            filter: RowFilter::new(vec![ColumnPredicate {
                column: 1,
                op: CmpOp::Gt,
                value: 55.0,
            }]),
            ..spec.clone()
        };
        let other_key =
            CacheKey::new("t", "x", &cfg, &data).with_row_shape(other_spec.fingerprint());
        let other = cache
            .get_or_compute_rows(other_key, &data, &cfg, &other_spec, &mut rng)
            .unwrap();
        assert!(!other.hit, "a different predicate is a different entry");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 3 });
        assert_eq!(cache.len(), 3);

        // Table-level invalidation reaches every shape's entries —
        // per-key invalidation cannot enumerate the fingerprints.
        cache.invalidate_table("t");
        assert!(cache.is_empty(), "all shapes dropped for the table");
        let after = cache
            .get_or_compute_rows(
                CacheKey::new("t", "x", &cfg, &data).with_row_shape(spec.fingerprint()),
                &data,
                &cfg,
                &spec,
                &mut rng,
            )
            .unwrap();
        assert!(!after.hit, "invalidation forces a recompute");
    }

    #[test]
    fn sketch_sigma_and_pilot_sigma_never_share_a_slot() {
        // The σ-source flag is fingerprint-hashed: a query whose σ came
        // from block sketches and one whose σ came from the sampling
        // pilot describe different plans and must key separately — an
        // executor that derived its key before toggling the flag would
        // silently alias them.
        let ds = normal_dataset(100.0, 20.0, 50_000, 5, 63);
        let cache = PreEstimateCache::new();
        let pilot_cfg = config(0.5);
        let mut sketch_cfg = config(0.5);
        sketch_cfg.sketch_sigma = true;
        let pilot_key = CacheKey::new("t", "c", &pilot_cfg, &ds.blocks);
        let sketch_key = CacheKey::new("t", "c", &sketch_cfg, &ds.blocks);
        assert_ne!(pilot_key, sketch_key, "the flag is part of the key");
        assert_ne!(pilot_key.digest(), sketch_key.digest());
        let mut rng = StdRng::seed_from_u64(8);
        cache
            .get_or_compute(sketch_key.clone(), &ds.blocks, &sketch_cfg, &mut rng)
            .unwrap();
        assert!(cache.contains(&sketch_key));
        assert!(
            !cache.contains(&pilot_key),
            "sketch-σ entry must not answer pilot-σ probes"
        );
        let pilot = cache
            .get_or_compute(pilot_key.clone(), &ds.blocks, &pilot_cfg, &mut rng)
            .unwrap();
        assert!(!pilot.hit, "pilot-σ lookup misses, never aliases");
        assert_eq!(cache.len(), 2);
        // digest() is a stable function of the key alone.
        assert_eq!(pilot_key.digest(), pilot_key.clone().digest());
    }

    #[test]
    fn epoch_delta_fold_is_bit_identical_to_a_cold_fold() {
        let mut ds = normal_dataset(100.0, 20.0, 60_000, 6, 70);
        let extra = normal_dataset(105.0, 22.0, 20_000, 2, 71);
        let cfg = config(0.5);
        let warm = PreEstimateCache::new();
        let key = |d: &BlockSet| CacheKey::new("t", "c", &cfg, d);
        let salt = 0xA5;
        let first = warm
            .get_or_compute_epoch(key(&ds.blocks), &ds.blocks, &cfg, salt)
            .unwrap();
        assert!(!first.hit);
        // Two sealed appends: two new epochs on top of the folded one.
        for i in 0..extra.blocks.block_count() {
            ds.blocks
                .append_block(extra.blocks.block(i).clone())
                .unwrap();
        }
        assert_eq!(ds.blocks.epoch(), 2);
        let delta = warm
            .get_or_compute_epoch(key(&ds.blocks), &ds.blocks, &cfg, salt)
            .unwrap();
        assert!(!delta.hit, "a grown set re-folds the delta");
        // A cold cache replaying the full history must agree bit for bit.
        let cold = PreEstimateCache::new();
        let full = cold
            .get_or_compute_epoch(key(&ds.blocks), &ds.blocks, &cfg, salt)
            .unwrap();
        assert_eq!(delta.pre, full.pre, "delta resume ≡ cold replay");
        assert_eq!(
            warm.epoch_stats(),
            EpochCacheStats {
                exact_hits: 0,
                delta_folds: 1,
                cold_folds: 1,
            }
        );
        assert_eq!(cold.epoch_stats().cold_folds, 1);
        // Repeating at the same epoch is an exact hit with no folding.
        let hit = warm
            .get_or_compute_epoch(key(&ds.blocks), &ds.blocks, &cfg, salt)
            .unwrap();
        assert!(hit.hit);
        assert_eq!(hit.pre, full.pre);
        assert_eq!(warm.epoch_stats().exact_hits, 1);
        // A different salt is a different pilot stream.
        let other = PreEstimateCache::new();
        let salted = other
            .get_or_compute_epoch(key(&ds.blocks), &ds.blocks, &cfg, salt + 1)
            .unwrap();
        assert_ne!(salted.pre, full.pre, "salt must move the streams");
    }

    proptest::proptest! {
        /// Satellite invariant: for ANY append schedule, serving from the
        /// cached fold plus a pilot over only the new epochs is
        /// bit-identical to a cold full pre-estimate of the grown set.
        #[test]
        fn cached_delta_folds_match_cold_replay_for_any_append_schedule(
            initial_blocks in 2usize..6,
            schedule in proptest::collection::vec((1usize..4, 500usize..3_000), 1..5),
            seed in 0u64..(1 << 48),
        ) {
            let cfg = config(0.5);
            let mut ds = normal_dataset(100.0, 20.0, 24_000, initial_blocks, seed);
            let warm = PreEstimateCache::new();
            let salt = 0x5EED;
            let mut latest = warm
                .get_or_compute_epoch(CacheKey::new("t", "c", &cfg, &ds.blocks), &ds.blocks, &cfg, salt)
                .unwrap();
            for (i, (blocks, rows)) in schedule.iter().copied().enumerate() {
                let extra = normal_dataset(
                    100.0 + i as f64,
                    20.0,
                    rows.max(blocks),
                    blocks,
                    seed.wrapping_add(i as u64 + 1),
                );
                for b in 0..extra.blocks.block_count() {
                    ds.blocks.append_block(extra.blocks.block(b).clone()).unwrap();
                }
                latest = warm
                    .get_or_compute_epoch(
                        CacheKey::new("t", "c", &cfg, &ds.blocks),
                        &ds.blocks,
                        &cfg,
                        salt,
                    )
                    .unwrap();
            }
            let cold = PreEstimateCache::new()
                .get_or_compute_epoch(CacheKey::new("t", "c", &cfg, &ds.blocks), &ds.blocks, &cfg, salt)
                .unwrap();
            proptest::prop_assert_eq!(latest.pre, cold.pre);
            // Only the very first lookup folded from scratch; every
            // post-append lookup resumed the cached fold.
            proptest::prop_assert_eq!(warm.epoch_stats().cold_folds, 1);
            proptest::prop_assert_eq!(warm.epoch_stats().delta_folds, schedule.len() as u64);
            // One epoch per appended block, on top of the initial mark.
            let appended: usize = schedule.iter().map(|(blocks, _)| blocks).sum();
            proptest::prop_assert_eq!(ds.blocks.epoch(), appended as u64);
        }
    }

    #[test]
    fn epoch_row_delta_matches_cold_and_foreign_history_cold_folds() {
        use crate::engine::rows::RowSpec;
        use isla_storage::{CmpOp, ColumnPredicate, RowFilter, RowsBlock};
        use std::sync::Arc;

        let n = 40_000usize;
        let x = isla_datagen::normal_values(100.0, 20.0, n, 72);
        let y: Vec<f64> = x.iter().map(|v| v * 0.5).collect();
        let mut data = RowsBlock::split(vec![x, y], 4);
        let spec = RowSpec {
            agg_column: 0,
            filter: RowFilter::new(vec![ColumnPredicate {
                column: 1,
                op: CmpOp::Gt,
                value: 45.0,
            }]),
            group_by: None,
        };
        let cfg = config(0.5);
        let key =
            |d: &BlockSet| CacheKey::new("t", "x", &cfg, d).with_row_shape(spec.fingerprint());
        let warm = PreEstimateCache::new();
        warm.get_or_compute_rows_epoch(key(&data), &data, &cfg, &spec, 7)
            .unwrap();
        let x2 = isla_datagen::normal_values(90.0, 15.0, 8_000, 73);
        let y2: Vec<f64> = x2.iter().map(|v| v * 0.5).collect();
        data.append_block(Arc::new(RowsBlock::new(vec![x2, y2])))
            .unwrap();
        let delta = warm
            .get_or_compute_rows_epoch(key(&data), &data, &cfg, &spec, 7)
            .unwrap();
        let cold = PreEstimateCache::new();
        let full = cold
            .get_or_compute_rows_epoch(key(&data), &data, &cfg, &spec, 7)
            .unwrap();
        assert_eq!(delta.pre, full.pre, "row delta resume ≡ cold replay");
        assert_eq!(warm.epoch_stats().delta_folds, 1);
        let repeat = warm
            .get_or_compute_rows_epoch(key(&data), &data, &cfg, &spec, 7)
            .unwrap();
        assert!(repeat.hit);

        // A set whose mark history disagrees with the cached entry's
        // shape (same lineage coordinates, different actual blocks)
        // must cold-fold, never resume a fold that doesn't describe it.
        let x3 = isla_datagen::normal_values(100.0, 20.0, n / 2, 74);
        let y3: Vec<f64> = x3.iter().map(|v| v * 0.5).collect();
        let mut foreign = RowsBlock::split(vec![x3, y3], 3);
        let x4 = isla_datagen::normal_values(100.0, 20.0, 1_000, 75);
        let y4: Vec<f64> = x4.iter().map(|v| v * 0.5).collect();
        foreign
            .append_block(Arc::new(RowsBlock::new(vec![x4, y4])))
            .unwrap();
        let before = warm.epoch_stats().cold_folds;
        warm.get_or_compute_rows_epoch(key(&foreign), &foreign, &cfg, &spec, 7)
            .unwrap();
        assert_eq!(
            warm.epoch_stats().cold_folds,
            before + 1,
            "mismatched epoch history must not resume the cached fold"
        );
    }

    #[test]
    fn invalidate_and_clear_force_recomputation() {
        let ds = normal_dataset(100.0, 20.0, 50_000, 5, 62);
        let cache = PreEstimateCache::new();
        let cfg = config(0.5);
        let key = CacheKey::new("t", "c", &cfg, &ds.blocks);
        let mut rng = StdRng::seed_from_u64(4);
        cache
            .get_or_compute(key.clone(), &ds.blocks, &cfg, &mut rng)
            .unwrap();
        cache.invalidate(&key);
        assert!(cache.is_empty());
        let lookup = cache
            .get_or_compute(key.clone(), &ds.blocks, &cfg, &mut rng)
            .unwrap();
        assert!(!lookup.hit, "invalidation forces a recompute");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2, "counters survive clear");
    }
}
