//! Query plans: validated configuration + pre-estimation, resolved once.
//!
//! A [`QueryPlan`] captures everything the per-block Calculation phase
//! needs — the validated [`IslaConfig`], the [`PreEstimate`] (σ̂,
//! `sketch0`, rate), the negative-data shift, and the data boundaries —
//! so that every scheduler executes the *same* plan and the pipeline's
//! phase logic lives in exactly one place.

use rand::RngCore;

use isla_storage::BlockSet;

use crate::boundaries::DataBoundaries;
use crate::config::IslaConfig;
use crate::error::IslaError;
use crate::pre_estimation::{pre_estimate, PreEstimate};
use crate::shift::compute_shift;

/// How the calculation-phase sampling rate is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateSpec {
    /// The precision-derived rate from pre-estimation (Eq. 1).
    Derived,
    /// The derived rate scaled by a factor in `(0, 1]` (the paper's
    /// Table V runs ISLA at `r/3`).
    Scaled(f64),
    /// An explicit absolute rate in `(0, 1]`, ignoring the derived one
    /// (fixed-budget comparisons, deadline capping).
    Absolute(f64),
}

impl RateSpec {
    /// Validates the specification's domain.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] naming the offending value.
    pub fn validate(self) -> Result<(), IslaError> {
        match self {
            RateSpec::Derived => Ok(()),
            RateSpec::Scaled(f) if f > 0.0 && f <= 1.0 => Ok(()),
            RateSpec::Scaled(f) => Err(IslaError::InvalidConfig(format!(
                "rate factor must be in (0, 1], got {f}"
            ))),
            RateSpec::Absolute(r) if r > 0.0 && r <= 1.0 => Ok(()),
            RateSpec::Absolute(r) => Err(IslaError::InvalidConfig(format!(
                "sampling rate must be in (0, 1], got {r}"
            ))),
        }
    }

    /// The concrete rate this specification resolves to, given the
    /// precision-derived rate.
    pub(crate) fn resolve(self, derived: f64) -> f64 {
        match self {
            RateSpec::Derived => derived,
            RateSpec::Scaled(f) => derived * f,
            RateSpec::Absolute(r) => r,
        }
    }
}

/// A fully resolved execution plan: validated config, pre-estimate,
/// shift, boundaries, and the calculation-phase sampling rate.
///
/// Build one with [`QueryPlan::prepare`] (runs the pilots) or
/// [`QueryPlan::from_pre_estimate`] (reuses a cached pre-estimate and
/// skips the pilots entirely), then hand it to an
/// [`engine scheduler`](crate::engine::BlockScheduler) via
/// [`crate::engine::run_plan`].
#[derive(Debug, Clone)]
pub struct QueryPlan {
    config: IslaConfig,
    pre: PreEstimate,
    shift: f64,
    sketch0_shifted: f64,
    boundaries: Option<DataBoundaries>,
    rate: f64,
    data_size: u64,
}

impl QueryPlan {
    /// Prepares a plan by running pre-estimation on `data`.
    ///
    /// # Errors
    ///
    /// Invalid configuration or rate spec, or pre-estimation failures.
    pub fn prepare(
        data: &BlockSet,
        config: &IslaConfig,
        rate: RateSpec,
        rng: &mut dyn RngCore,
    ) -> Result<Self, IslaError> {
        config.validate()?;
        rate.validate()?;
        let pre = pre_estimate(data, config, rng)?;
        Self::from_pre_estimate(data, config, pre, rate)
    }

    /// Builds a plan from an already-computed pre-estimate (e.g. from a
    /// [`crate::engine::PreEstimateCache`]), spending no pilot samples.
    ///
    /// # Errors
    ///
    /// Invalid configuration or rate spec.
    pub fn from_pre_estimate(
        data: &BlockSet,
        config: &IslaConfig,
        pre: PreEstimate,
        rate: RateSpec,
    ) -> Result<Self, IslaError> {
        config.validate()?;
        rate.validate()?;
        let data_size = data.total_len();
        if pre.sigma == 0.0 {
            // Degenerate data: the pilot pinned the (constant) answer;
            // no boundaries exist and no blocks will run.
            return Ok(Self {
                config: config.clone(),
                sketch0_shifted: pre.sketch0,
                pre,
                shift: 0.0,
                boundaries: None,
                rate: 0.0,
                data_size,
            });
        }
        let shift = compute_shift(config.shift_policy, pre.sketch0, pre.sigma, config.p2);
        let sketch0_shifted = pre.sketch0 + shift;
        let boundaries = Some(DataBoundaries::new(
            sketch0_shifted,
            pre.sigma,
            config.p1,
            config.p2,
        ));
        let resolved = rate.resolve(pre.rate);
        Ok(Self {
            config: config.clone(),
            pre,
            shift,
            sketch0_shifted,
            boundaries,
            rate: resolved,
            data_size,
        })
    }

    /// A copy of this plan with the calculation-phase rate replaced by an
    /// absolute value (deadline capping). The pre-estimate, shift, and
    /// boundaries are kept — pilots already spent are sunk cost.
    pub fn with_absolute_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Whether pre-estimation found constant data (σ = 0): the answer is
    /// pinned and no block execution happens.
    pub fn is_degenerate(&self) -> bool {
        self.pre.sigma == 0.0
    }

    /// The configuration in effect.
    pub fn config(&self) -> &IslaConfig {
        &self.config
    }

    /// The pre-estimation output backing this plan.
    pub fn pre(&self) -> &PreEstimate {
        &self.pre
    }

    /// The negative-data translation applied (0 when none).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// `sketch0` in the shifted domain.
    pub fn sketch0_shifted(&self) -> f64 {
        self.sketch0_shifted
    }

    /// The resolved calculation-phase sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Total rows `M` across blocks at plan time.
    pub fn data_size(&self) -> u64 {
        self.data_size
    }

    /// The data boundaries (shifted domain).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate plan — degenerate plans short-circuit in
    /// [`crate::engine::run_plan`] and never reach block execution.
    pub fn boundaries(&self) -> DataBoundaries {
        self.boundaries
            // isla-lint: allow(panic-freedom, reason = "documented # Panics contract: run_plan short-circuits degenerate plans before any block executes")
            .expect("degenerate plans never reach block execution")
    }

    /// The sample size a block of `block_len` rows receives.
    pub fn sample_size_for(&self, block_len: u64) -> u64 {
        (self.rate * block_len as f64).round() as u64
    }

    /// Total calculation-phase samples the plan will draw over `data`
    /// (equals the executed total: per-block sizes are fixed up front).
    pub fn planned_calculation_samples(&self, data: &BlockSet) -> u64 {
        data.iter().map(|b| self.sample_size_for(b.len())).sum()
    }

    /// Planned samples including the pre-estimation pilots.
    pub fn planned_samples_with_pilots(&self, data: &BlockSet) -> u64 {
        self.planned_calculation_samples(data)
            + self.pre.sigma_pilot_used
            + self.pre.sketch_pilot_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    #[test]
    fn rate_specs_resolve_and_validate() {
        assert!(RateSpec::Derived.validate().is_ok());
        assert!(RateSpec::Scaled(1.0).validate().is_ok());
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                RateSpec::Scaled(bad).validate(),
                Err(IslaError::InvalidConfig(_))
            ));
            assert!(matches!(
                RateSpec::Absolute(bad).validate(),
                Err(IslaError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn prepare_resolves_rates_against_the_pre_estimate() {
        let ds = normal_dataset(100.0, 20.0, 200_000, 10, 90);
        let derived = {
            let mut rng = StdRng::seed_from_u64(1);
            QueryPlan::prepare(&ds.blocks, &config(0.5), RateSpec::Derived, &mut rng).unwrap()
        };
        let scaled = {
            let mut rng = StdRng::seed_from_u64(1);
            QueryPlan::prepare(
                &ds.blocks,
                &config(0.5),
                RateSpec::Scaled(1.0 / 3.0),
                &mut rng,
            )
            .unwrap()
        };
        let absolute = {
            let mut rng = StdRng::seed_from_u64(1);
            QueryPlan::prepare(&ds.blocks, &config(0.5), RateSpec::Absolute(0.05), &mut rng)
                .unwrap()
        };
        assert_eq!(derived.rate(), derived.pre().rate);
        assert_eq!(scaled.rate(), derived.pre().rate * (1.0 / 3.0));
        assert_eq!(absolute.rate(), 0.05);
        assert!(!derived.is_degenerate());
        assert_eq!(derived.data_size(), 200_000);
        // Planned samples account for rounding per block.
        let planned = absolute.planned_calculation_samples(&ds.blocks);
        assert!((planned as i64 - 10_000).abs() <= 10, "planned {planned}");
        assert!(
            absolute.planned_samples_with_pilots(&ds.blocks) > planned,
            "pilots must be charged"
        );
    }

    #[test]
    fn degenerate_data_produces_a_short_circuit_plan() {
        let data = BlockSet::from_values(vec![3.0; 1_000], 4);
        let mut rng = StdRng::seed_from_u64(2);
        let plan = QueryPlan::prepare(&data, &config(0.1), RateSpec::Derived, &mut rng).unwrap();
        assert!(plan.is_degenerate());
        assert_eq!(plan.rate(), 0.0);
        assert_eq!(plan.pre().sketch0, 3.0);
        assert_eq!(plan.planned_calculation_samples(&data), 0);
    }

    #[test]
    fn absolute_rate_override_keeps_the_pre_estimate() {
        let ds = normal_dataset(100.0, 20.0, 100_000, 5, 91);
        let mut rng = StdRng::seed_from_u64(3);
        let plan =
            QueryPlan::prepare(&ds.blocks, &config(0.5), RateSpec::Derived, &mut rng).unwrap();
        let pre = plan.pre().clone();
        let capped = plan.with_absolute_rate(0.01);
        assert_eq!(capped.rate(), 0.01);
        assert_eq!(capped.pre(), &pre, "re-rating must not re-run pilots");
    }
}
