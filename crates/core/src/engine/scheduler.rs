//! Block schedulers: where and when the per-block Calculation phase runs.
//!
//! A [`BlockScheduler`] executes a [`QueryPlan`] over a block set and
//! returns a mergeable [`PartialAggregate`]. Because per-block seeds are
//! fixed before execution ([`crate::engine::derive_block_seeds`]) and
//! partials re-canonicalize on finalize, **every scheduler produces the
//! bit-identical answer** for the same plan and RNG stream:
//!
//! * [`SequentialScheduler`] — blocks in order on the calling thread;
//! * [`PooledScheduler`] — block tasks scattered over a crossbeam
//!   worker pool, partials gathered as they complete;
//! * [`DeadlineScheduler`] — a budget-capping policy wrapped around any
//!   inner scheduler (the paper's §VII-F time constraint): when the plan
//!   wants more samples than the budget affords, the rate is capped and
//!   the run is marked time-limited.
//!
//! [`scan_blocks`] is the scheduler-shaped primitive for *non-ISLA*
//! per-block work: the baseline estimators run their block scans through
//! it, so US/STS/MV/MVB/SLEV parallelize with the same worker pool.
//!
//! Every per-block attempt runs under the [`super::recovery`] layer:
//! transient storage errors retry with deterministic backoff, worker
//! panics surface as typed [`IslaError::Internal`] errors instead of
//! wedging the pool, and under a best-effort [`RecoveryPolicy`] failed
//! blocks are dropped into [`EngineRun::failures`] rather than failing
//! the run.

use std::collections::HashSet;

use crossbeam::channel;

use isla_storage::{BlockSet, DataBlock};

use crate::block_exec::{execute_block, BlockOutcome};
use crate::error::IslaError;

use super::partial::PartialAggregate;
use super::plan::QueryPlan;
use super::recovery::{run_block_recovering, BlockFailure, RecoveryPolicy};
use super::rows::RowPlan;

/// Per-worker execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Blocks this worker processed.
    pub blocks_processed: u64,
    /// Samples this worker drew.
    pub samples_drawn: u64,
}

/// Everything a scheduler needs to execute one plan: the plan itself,
/// the data, and the pre-derived per-block seeds.
#[derive(Debug)]
pub struct BlockExecution<'a> {
    /// The resolved plan.
    pub plan: &'a QueryPlan,
    /// The block set under aggregation.
    pub data: &'a BlockSet,
    /// Per-block RNG seeds, one per block in block order.
    pub seeds: &'a [u64],
    /// Retry and failure-mode policy governing every block attempt.
    pub recovery: &'a RecoveryPolicy,
}

/// The product of one scheduler run.
#[derive(Debug)]
pub struct EngineRun {
    /// Mergeable per-block state.
    pub partial: PartialAggregate,
    /// Per-worker statistics (one entry for sequential runs).
    pub worker_stats: Vec<WorkerStats>,
    /// Blocks dropped under a best-effort policy, sorted by block id.
    /// Always empty under [`super::recovery::FailureMode::Strict`] — a
    /// strict failure returns an error instead.
    pub failures: Vec<BlockFailure>,
}

/// A strategy for executing a plan's per-block Calculation phase.
///
/// Implementations must derive each block's RNG exclusively from
/// `exec.seeds[block_id]` so the answer is independent of scheduling.
pub trait BlockScheduler {
    /// Short display name (`"sequential"`, `"pooled"`, …).
    fn name(&self) -> &'static str;

    /// Number of blocks this scheduler works on concurrently.
    fn parallelism(&self) -> usize;

    /// Admission control: a chance to rewrite the plan before seeds are
    /// drawn (e.g. deadline capping). Returns the plan to execute and
    /// whether it was capped relative to what the caller asked for.
    fn admit(&self, plan: QueryPlan, _data: &BlockSet) -> (QueryPlan, bool) {
        (plan, false)
    }

    /// Admission control for row-model plans — the grouped/filtered
    /// pipeline calls this before deriving seeds, so a budget-capping
    /// scheduler ([`DeadlineScheduler`]) applies to `WHERE`/`GROUP BY`
    /// execution exactly as to the scalar path.
    fn admit_rows(&self, plan: RowPlan, _data: &BlockSet) -> (RowPlan, bool) {
        (plan, false)
    }

    /// Executes every block of `exec.data` under `exec.plan`.
    ///
    /// # Errors
    ///
    /// The first block failure encountered.
    fn execute(&self, exec: &BlockExecution<'_>) -> Result<EngineRun, IslaError>;
}

/// Executes one block of a plan with its pre-derived seed — the single
/// definition of "run block `i`" shared by every scheduler.
///
/// # Errors
///
/// Propagates storage errors from sampling.
pub fn execute_planned_block(
    exec: &BlockExecution<'_>,
    block_id: usize,
) -> Result<BlockOutcome, IslaError> {
    let block = exec.data.block(block_id);
    let mut block_rng = super::seed::seeded_rng(exec.seeds[block_id]);
    execute_block(
        block.as_ref(),
        block_id,
        exec.plan.sample_size_for(block.len()),
        exec.plan.boundaries(),
        exec.plan.sketch0_shifted(),
        exec.plan.shift(),
        exec.plan.config(),
        &mut block_rng,
    )
}

/// One recovering attempt series for one block: retries transient
/// failures under the execution's policy, converts worker panics into
/// typed errors, and rejects non-finite block answers (corrupt data) as
/// permanent failures so they can never poison the combined estimate.
fn run_planned_block_recovering(
    exec: &BlockExecution<'_>,
    block_id: usize,
) -> Result<BlockOutcome, (u32, IslaError)> {
    run_block_recovering(&exec.recovery.retry, block_id, || {
        let outcome = execute_planned_block(exec, block_id)?;
        if !outcome.answer.is_finite() {
            return Err(IslaError::InsufficientData(format!(
                "block {block_id} produced a non-finite answer (corrupt data)"
            )));
        }
        Ok(outcome)
    })
}

/// Converts a strict-mode block failure into the run-level error: panics
/// keep their [`IslaError::Internal`] typing; everything else reports as
/// insufficient data, exactly as distributed execution always has.
fn strict_failure(block_id: usize, error: IslaError) -> IslaError {
    match error {
        e @ IslaError::Internal(_) => e,
        e => IslaError::InsufficientData(format!(
            "block {block_id} failed during distributed execution: {e}"
        )),
    }
}

/// Runs blocks in order on the calling thread (the classic
/// [`crate::IslaAggregator`] path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialScheduler;

impl BlockScheduler for SequentialScheduler {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn parallelism(&self) -> usize {
        1
    }

    fn execute(&self, exec: &BlockExecution<'_>) -> Result<EngineRun, IslaError> {
        let mut partial = PartialAggregate::new();
        let mut stats = WorkerStats::default();
        let mut failures = Vec::new();
        for block_id in 0..exec.data.block_count() {
            match run_planned_block_recovering(exec, block_id) {
                Ok(outcome) => {
                    stats.blocks_processed += 1;
                    stats.samples_drawn += outcome.samples_drawn;
                    partial.absorb(outcome);
                }
                Err((_, error)) if !exec.recovery.is_best_effort() => return Err(error),
                Err((attempts, error)) => failures.push(BlockFailure {
                    block_id,
                    attempts,
                    error: error.to_string(),
                }),
            }
        }
        Ok(EngineRun {
            partial,
            worker_stats: vec![stats],
            failures,
        })
    }
}

/// A worker's reply on the pooled scheduler's gather channel.
enum PooledReply {
    Done {
        worker: usize,
        outcome: Box<BlockOutcome>,
    },
    Failed {
        block_id: usize,
        attempts: u32,
        error: IslaError,
    },
}

/// Scatters block tasks across a crossbeam worker-thread pool and
/// gathers partials as they complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PooledScheduler {
    workers: usize,
}

impl PooledScheduler {
    /// Creates a pool of `workers` threads.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] for zero workers.
    pub fn new(workers: usize) -> Result<Self, IslaError> {
        if workers == 0 {
            return Err(IslaError::InvalidConfig(
                "worker count must be positive".to_string(),
            ));
        }
        Ok(Self { workers })
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_default_workers() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self { workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl BlockScheduler for PooledScheduler {
    fn name(&self) -> &'static str {
        "pooled"
    }

    fn parallelism(&self) -> usize {
        self.workers
    }

    fn execute(&self, exec: &BlockExecution<'_>) -> Result<EngineRun, IslaError> {
        let block_count = exec.data.block_count();
        let (task_tx, task_rx) = channel::unbounded::<usize>();
        let (reply_tx, reply_rx) = channel::unbounded::<PooledReply>();
        for block_id in 0..block_count {
            task_tx
                .send(block_id)
                .map_err(|_| IslaError::Internal("pooled task queue closed early".to_string()))?;
        }
        drop(task_tx); // workers drain the queue, then exit

        let mut stats = vec![WorkerStats::default(); self.workers];
        // Terminal failures in completion order — strict mode reports
        // the first one, best-effort keeps them all (re-sorted below).
        let mut failed: Vec<(usize, u32, IslaError)> = Vec::new();
        let mut outcomes: Vec<Option<BlockOutcome>> = Vec::new();
        outcomes.resize_with(block_count, || None);

        crossbeam::thread::scope(|scope| {
            for worker in 0..self.workers {
                let task_rx = task_rx.clone();
                let reply_tx = reply_tx.clone();
                scope.spawn(move |_| {
                    while let Ok(block_id) = task_rx.recv() {
                        let reply = match run_planned_block_recovering(exec, block_id) {
                            Ok(outcome) => PooledReply::Done {
                                worker,
                                outcome: Box::new(outcome),
                            },
                            Err((attempts, error)) => PooledReply::Failed {
                                block_id,
                                attempts,
                                error,
                            },
                        };
                        if reply_tx.send(reply).is_err() {
                            break; // coordinator gone; nothing left to report to
                        }
                    }
                });
            }
            drop(reply_tx);

            // Gather on the coordinator thread.
            for reply in reply_rx.iter() {
                match reply {
                    PooledReply::Done { worker, outcome } => {
                        stats[worker].blocks_processed += 1;
                        stats[worker].samples_drawn += outcome.samples_drawn;
                        let block_id = outcome.block_id;
                        outcomes[block_id] = Some(*outcome);
                    }
                    PooledReply::Failed {
                        block_id,
                        attempts,
                        error,
                    } => failed.push((block_id, attempts, error)),
                }
            }
        })
        .map_err(|_| IslaError::Internal("a pooled worker thread panicked".to_string()))?;

        if !exec.recovery.is_best_effort() && !failed.is_empty() {
            let (block_id, _, error) = failed.remove(0);
            return Err(strict_failure(block_id, error));
        }
        failed.sort_by_key(|&(block_id, _, _)| block_id);
        let failures: Vec<BlockFailure> = failed
            .into_iter()
            .map(|(block_id, attempts, error)| BlockFailure {
                block_id,
                attempts,
                error: error.to_string(),
            })
            .collect();
        let dropped: HashSet<usize> = failures.iter().map(|f| f.block_id).collect();
        let mut partial = PartialAggregate::new();
        for (block_id, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Some(outcome) => partial.absorb(outcome),
                None if dropped.contains(&block_id) => {}
                None => {
                    return Err(IslaError::Internal(format!(
                        "block {block_id} neither succeeded nor failed"
                    )))
                }
            }
        }
        Ok(EngineRun {
            partial,
            worker_stats: stats,
            failures,
        })
    }
}

/// Caps the plan to a sample budget before delegating to an inner
/// scheduler — the §VII-F time-constraint logic as a scheduling policy.
///
/// When the plan (pilots included) wants more samples than `budget`, the
/// calculation rate is capped so the pilot draws plus the calculation
/// phase fit the budget (`(budget − pilots) / M`) and the run is
/// reported as time-limited. The pilots themselves are sunk cost — they
/// ran before admission — so the cached pre-estimate and boundaries are
/// reused as-is and only the calculation phase shrinks.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineScheduler<S> {
    inner: S,
    budget: u64,
}

impl<S: BlockScheduler> DeadlineScheduler<S> {
    /// Wraps `inner` with an affordable-sample budget.
    pub fn new(inner: S, budget: u64) -> Self {
        Self { inner, budget }
    }

    /// The sample budget in effect.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: BlockScheduler> BlockScheduler for DeadlineScheduler<S> {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn parallelism(&self) -> usize {
        self.inner.parallelism()
    }

    fn admit(&self, plan: QueryPlan, data: &BlockSet) -> (QueryPlan, bool) {
        let (plan, limited) = self.inner.admit(plan, data);
        if plan.is_degenerate() {
            return (plan, limited);
        }
        let wanted = plan.planned_samples_with_pilots(data);
        if wanted <= self.budget {
            return (plan, limited);
        }
        // Budget left for the calculation phase after the (already spent)
        // pilot draws. `wanted > budget` guarantees this caps the rate
        // strictly below the plan's own — it can never raise it.
        let pilots = wanted - plan.planned_calculation_samples(data);
        let calc_budget = self.budget.saturating_sub(pilots);
        let rate = (calc_budget as f64 / data.total_len() as f64)
            .clamp(f64::MIN_POSITIVE, 1.0)
            .min(plan.rate());
        (plan.with_absolute_rate(rate), true)
    }

    fn admit_rows(&self, plan: RowPlan, data: &BlockSet) -> (RowPlan, bool) {
        let (plan, limited) = self.inner.admit_rows(plan, data);
        let wanted = plan.planned_samples_with_pilots(data);
        if wanted <= self.budget {
            return (plan, limited);
        }
        // As the scalar case: pilot rows are sunk cost, only the
        // calculation rate shrinks to what the budget leaves over.
        let calc_budget = self.budget.saturating_sub(plan.pilot_rows());
        let rate = (calc_budget as f64 / data.total_len() as f64)
            .clamp(f64::MIN_POSITIVE, 1.0)
            .min(plan.rate());
        (plan.with_absolute_rate(rate), true)
    }

    fn execute(&self, exec: &BlockExecution<'_>) -> Result<EngineRun, IslaError> {
        self.inner.execute(exec)
    }
}

/// Runs an arbitrary per-block job over every block, `parallelism` blocks
/// at a time, collecting the results in block order.
///
/// This is the primitive behind the baseline estimators' parallel block
/// scans: jobs carry their own per-block randomness (e.g. seeds derived
/// with [`crate::engine::derive_block_seeds`]), so the result is
/// independent of scheduling, exactly like the ISLA pipeline itself.
///
/// # Errors
///
/// The first job failure encountered (remaining jobs still drain).
pub fn scan_blocks<T, F>(parallelism: usize, data: &BlockSet, job: F) -> Result<Vec<T>, IslaError>
where
    T: Send,
    F: Fn(usize, &dyn DataBlock) -> Result<T, IslaError> + Sync,
{
    let (slots, failures) =
        scan_blocks_recovering(parallelism, data, &RecoveryPolicy::strict(), job)?;
    debug_assert!(
        failures.is_empty(),
        "strict scans error instead of degrading"
    );
    slots
        .into_iter()
        .enumerate()
        .map(|(block_id, slot)| {
            slot.ok_or_else(|| {
                IslaError::Internal(format!("block {block_id} produced no scan result"))
            })
        })
        .collect()
}

/// [`scan_blocks`] under an explicit [`RecoveryPolicy`]: each block's
/// job retries transient failures per the policy, worker panics become
/// typed errors, and under best-effort mode terminal failures leave a
/// `None` slot plus a [`BlockFailure`] entry instead of failing the
/// scan. The failure list is sorted by block id.
///
/// # Errors
///
/// Under strict mode, the first terminal job failure (remaining jobs
/// still drain); under best-effort, only internal invariant violations.
pub fn scan_blocks_recovering<T, F>(
    parallelism: usize,
    data: &BlockSet,
    recovery: &RecoveryPolicy,
    job: F,
) -> Result<(Vec<Option<T>>, Vec<BlockFailure>), IslaError>
where
    T: Send,
    F: Fn(usize, &dyn DataBlock) -> Result<T, IslaError> + Sync,
{
    let block_count = data.block_count();
    let job = &job;
    let run_one = |block_id: usize| {
        run_block_recovering(&recovery.retry, block_id, || {
            job(block_id, data.block(block_id).as_ref())
        })
    };

    if parallelism <= 1 || block_count <= 1 {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(block_count);
        let mut failures = Vec::new();
        for block_id in 0..block_count {
            match run_one(block_id) {
                Ok(value) => slots.push(Some(value)),
                Err((_, error)) if !recovery.is_best_effort() => return Err(error),
                Err((attempts, error)) => {
                    failures.push(BlockFailure {
                        block_id,
                        attempts,
                        error: error.to_string(),
                    });
                    slots.push(None);
                }
            }
        }
        return Ok((slots, failures));
    }

    let (task_tx, task_rx) = channel::unbounded::<usize>();
    let (reply_tx, reply_rx) = channel::unbounded::<(usize, Result<T, (u32, IslaError)>)>();
    for block_id in 0..block_count {
        task_tx
            .send(block_id)
            .map_err(|_| IslaError::Internal("scan task queue closed early".to_string()))?;
    }
    drop(task_tx);

    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(block_count, || None);
    let mut failed: Vec<(usize, u32, IslaError)> = Vec::new();
    crossbeam::thread::scope(|scope| {
        for _ in 0..parallelism.min(block_count) {
            let task_rx = task_rx.clone();
            let reply_tx = reply_tx.clone();
            scope.spawn(move |_| {
                while let Ok(block_id) = task_rx.recv() {
                    let result = run_one(block_id);
                    if reply_tx.send((block_id, result)).is_err() {
                        break; // coordinator gone; nothing left to report to
                    }
                }
            });
        }
        drop(reply_tx);
        for (block_id, result) in reply_rx.iter() {
            match result {
                Ok(value) => slots[block_id] = Some(value),
                Err((attempts, error)) => failed.push((block_id, attempts, error)),
            }
        }
    })
    .map_err(|_| IslaError::Internal("a scan worker thread panicked".to_string()))?;

    if !recovery.is_best_effort() && !failed.is_empty() {
        let (_, _, error) = failed.remove(0);
        return Err(error);
    }
    failed.sort_by_key(|&(block_id, _, _)| block_id);
    let failures = failed
        .into_iter()
        .map(|(block_id, attempts, error)| BlockFailure {
            block_id,
            attempts,
            error: error.to_string(),
        })
        .collect();
    Ok((slots, failures))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IslaConfig;
    use crate::engine::plan::RateSpec;
    use crate::engine::seed::derive_block_seeds;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    fn plan_and_seeds(data: &BlockSet, cfg: &IslaConfig, seed: u64) -> (QueryPlan, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = QueryPlan::prepare(data, cfg, RateSpec::Derived, &mut rng).unwrap();
        let seeds = derive_block_seeds(&mut rng, data.block_count());
        (plan, seeds)
    }

    #[test]
    fn pooled_matches_sequential_bit_for_bit() {
        let ds = normal_dataset(100.0, 20.0, 300_000, 12, 95);
        let cfg = config(0.5);
        let (plan, seeds) = plan_and_seeds(&ds.blocks, &cfg, 7);
        let exec = BlockExecution {
            plan: &plan,
            data: &ds.blocks,
            seeds: &seeds,
            recovery: &RecoveryPolicy::strict(),
        };
        let sequential = SequentialScheduler.execute(&exec).unwrap();
        let seq = sequential.partial.finalize().unwrap();
        for workers in [1, 3, 6] {
            let pooled = PooledScheduler::new(workers)
                .unwrap()
                .execute(&exec)
                .unwrap();
            let pool = pooled.partial.finalize().unwrap();
            assert_eq!(seq.estimate, pool.estimate, "{workers} workers");
            assert_eq!(seq.total_samples, pool.total_samples);
        }
    }

    #[test]
    fn deadline_caps_only_over_budget_plans() {
        let ds = normal_dataset(100.0, 20.0, 200_000, 10, 96);
        let cfg = config(0.5);
        let (plan, _) = plan_and_seeds(&ds.blocks, &cfg, 8);
        let wanted = plan.planned_samples_with_pilots(&ds.blocks);

        let generous = DeadlineScheduler::new(SequentialScheduler, wanted + 1);
        let (admitted, limited) = generous.admit(plan.clone(), &ds.blocks);
        assert!(!limited);
        assert_eq!(admitted.rate(), plan.rate());

        // One sample over budget: the calculation phase shrinks by the
        // overage (pilots are sunk), and the rate can only go DOWN.
        let calc = plan.planned_calculation_samples(&ds.blocks);
        let pilots = wanted - calc;
        let barely = DeadlineScheduler::new(SequentialScheduler, wanted - 1);
        let (trimmed, limited) = barely.admit(plan.clone(), &ds.blocks);
        assert!(limited);
        assert!(
            trimmed.rate() < plan.rate(),
            "capping never raises the rate"
        );
        let trimmed_planned = trimmed.planned_calculation_samples(&ds.blocks);
        assert!(
            (trimmed_planned as i64 - (calc as i64 - 1)).abs() <= 10,
            "trimmed to ≈calc−1, planned {trimmed_planned}"
        );

        // A budget the pilots alone exhaust leaves nothing for the
        // calculation phase: every block falls back to the sketch.
        assert!(pilots > 1_000, "sanity: pilots dominate the tiny budget");
        let tight = DeadlineScheduler::new(SequentialScheduler, 1_000);
        let (capped, limited) = tight.admit(plan.clone(), &ds.blocks);
        assert!(limited);
        assert_eq!(capped.planned_calculation_samples(&ds.blocks), 0);
        assert_eq!(capped.pre(), plan.pre(), "pilots are sunk cost");
        assert_eq!(tight.parallelism(), 1);
        assert_eq!(tight.budget(), 1_000);
        assert_eq!(tight.inner().name(), "sequential");
    }

    #[test]
    fn scan_blocks_preserves_block_order_at_any_parallelism() {
        let ds = normal_dataset(100.0, 20.0, 10_000, 9, 97);
        let expected: Vec<u64> = (0..9).map(|i| ds.blocks.block(i).len()).collect();
        for parallelism in [1, 2, 4, 16] {
            let lens = scan_blocks(parallelism, &ds.blocks, |_, block| Ok(block.len())).unwrap();
            assert_eq!(lens, expected, "parallelism {parallelism}");
        }
    }

    #[test]
    fn scan_blocks_surfaces_job_errors() {
        let ds = normal_dataset(100.0, 20.0, 10_000, 4, 98);
        for parallelism in [1, 3] {
            let r = scan_blocks(parallelism, &ds.blocks, |i, block| {
                if i == 2 {
                    Err(IslaError::InsufficientData("block 2 broke".to_string()))
                } else {
                    Ok(block.len())
                }
            });
            assert!(matches!(r, Err(IslaError::InsufficientData(_))));
        }
    }

    #[test]
    fn best_effort_drops_failed_blocks_identically_across_schedulers() {
        use isla_storage::FaultPlan;

        let ds = normal_dataset(100.0, 20.0, 240_000, 8, 95);
        let cfg = config(0.5);
        let (plan, seeds) = plan_and_seeds(&ds.blocks, &cfg, 21);
        let faulty = FaultPlan::new(404).lose(0.3).arm(&ds.blocks);
        let recovery =
            RecoveryPolicy::best_effort(super::super::recovery::RetryPolicy::attempts(2));
        let exec = BlockExecution {
            plan: &plan,
            data: &faulty,
            seeds: &seeds,
            recovery: &recovery,
        };

        let seq = SequentialScheduler.execute(&exec).unwrap();
        assert!(
            !seq.failures.is_empty(),
            "the fault plan must actually lose blocks at 30%"
        );
        assert!(seq
            .failures
            .windows(2)
            .all(|w| w[0].block_id < w[1].block_id));
        let seq_answer = seq.partial.finalize().unwrap();

        for workers in [1, 2, 4, 7] {
            let pooled = PooledScheduler::new(workers)
                .unwrap()
                .execute(&exec)
                .unwrap();
            assert_eq!(pooled.failures, seq.failures, "{workers} workers");
            let pool_answer = pooled.partial.finalize().unwrap();
            assert_eq!(
                seq_answer.estimate, pool_answer.estimate,
                "{workers} workers"
            );
        }

        // The same faults under strict mode fail the run instead.
        let strict = BlockExecution {
            plan: &plan,
            data: &faulty,
            seeds: &seeds,
            recovery: &RecoveryPolicy::strict(),
        };
        assert!(SequentialScheduler.execute(&strict).is_err());
        assert!(PooledScheduler::new(3).unwrap().execute(&strict).is_err());
    }

    #[test]
    fn transient_faults_recover_without_degradation() {
        use isla_storage::FaultPlan;

        let ds = normal_dataset(100.0, 20.0, 120_000, 6, 95);
        let cfg = config(0.5);
        let (plan, seeds) = plan_and_seeds(&ds.blocks, &cfg, 22);
        let clean_exec = BlockExecution {
            plan: &plan,
            data: &ds.blocks,
            seeds: &seeds,
            recovery: &RecoveryPolicy::strict(),
        };
        let clean = SequentialScheduler
            .execute(&clean_exec)
            .unwrap()
            .partial
            .finalize()
            .unwrap();

        // Every block fails twice then recovers: three attempts suffice,
        // and the recovered answer is bit-identical to the clean run
        // because each retry re-seeds from the same per-block seed.
        let faulty = FaultPlan::new(77).transient(1.0, 2).arm(&ds.blocks);
        let recovery =
            RecoveryPolicy::best_effort(super::super::recovery::RetryPolicy::attempts(3));
        let exec = BlockExecution {
            plan: &plan,
            data: &faulty,
            seeds: &seeds,
            recovery: &recovery,
        };
        let recovered = SequentialScheduler.execute(&exec).unwrap();
        assert!(recovered.failures.is_empty(), "all blocks recovered");
        assert_eq!(
            recovered.partial.finalize().unwrap().estimate,
            clean.estimate
        );

        // Two attempts are not enough: every block degrades away.
        // Re-arm for fresh counters so the earlier attempts don't count.
        let starved = RecoveryPolicy::best_effort(super::super::recovery::RetryPolicy::attempts(2));
        let faulty = FaultPlan::new(77).transient(1.0, 2).arm(&ds.blocks);
        let exec = BlockExecution {
            plan: &plan,
            data: &faulty,
            seeds: &seeds,
            recovery: &starved,
        };
        let run = SequentialScheduler.execute(&exec).unwrap();
        assert_eq!(run.failures.len(), 6, "every block exhausted its budget");
        assert!(run.failures.iter().all(|f| f.attempts == 2));
    }

    #[test]
    fn scan_blocks_recovering_reports_failures_in_block_order() {
        let ds = normal_dataset(100.0, 20.0, 10_000, 5, 98);
        let recovery = RecoveryPolicy::best_effort(Default::default());
        for parallelism in [1, 3] {
            let (slots, failures) =
                scan_blocks_recovering(parallelism, &ds.blocks, &recovery, |i, block| {
                    if i % 2 == 0 {
                        Err(IslaError::InsufficientData(format!("block {i} broke")))
                    } else {
                        Ok(block.len())
                    }
                })
                .unwrap();
            let failed: Vec<usize> = failures.iter().map(|f| f.block_id).collect();
            assert_eq!(failed, vec![0, 2, 4], "parallelism {parallelism}");
            assert!(failures.iter().all(|f| f.attempts == 1));
            assert_eq!(slots.iter().filter(|s| s.is_some()).count(), 2);
            assert!(slots[0].is_none() && slots[1].is_some());
        }
    }

    #[test]
    fn pooled_rejects_zero_workers() {
        assert!(matches!(
            PooledScheduler::new(0),
            Err(IslaError::InvalidConfig(_))
        ));
        assert!(PooledScheduler::with_default_workers().workers() > 0);
    }

    #[test]
    fn seeds_decide_the_answer_not_the_scheduler() {
        // Changing one seed changes the answer; same seeds across
        // schedulers do not.
        let ds = normal_dataset(100.0, 20.0, 100_000, 5, 99);
        let cfg = config(0.5);
        let (plan, mut seeds) = plan_and_seeds(&ds.blocks, &cfg, 11);
        let exec = BlockExecution {
            plan: &plan,
            data: &ds.blocks,
            seeds: &seeds,
            recovery: &RecoveryPolicy::strict(),
        };
        let baseline = SequentialScheduler
            .execute(&exec)
            .unwrap()
            .partial
            .finalize()
            .unwrap();
        seeds[0] = seeds[0].wrapping_add(1);
        let exec = BlockExecution {
            plan: &plan,
            data: &ds.blocks,
            seeds: &seeds,
            recovery: &RecoveryPolicy::strict(),
        };
        let perturbed = SequentialScheduler
            .execute(&exec)
            .unwrap()
            .partial
            .finalize()
            .unwrap();
        // The answer can coincide (clamping), but block 0's sampled
        // regions cannot: a different seed draws different samples.
        assert_ne!(
            (baseline.blocks[0].u, baseline.blocks[0].v),
            (perturbed.blocks[0].u, perturbed.blocks[0].v)
        );
        assert_eq!(
            baseline.blocks[1].u, perturbed.blocks[1].u,
            "other seeds untouched"
        );
    }
}
