//! Row-model execution: predicate and `GROUP BY` pushdown through the
//! engine.
//!
//! The scalar pipeline answers `AVG(col)` over a whole column. Real
//! workloads filter and group; this module generalizes every phase to
//! row tuples:
//!
//! * **Pre-estimation** ([`row_pre_estimate`]) — pilot rows are drawn
//!   proportionally across blocks, evaluated against the compiled
//!   [`RowFilter`], and partitioned by group key. The pilots yield the
//!   predicate's selectivity, each group's share of the raw rows, and a
//!   per-group `σ̂`/`sketch0` — so `SUM`/`COUNT` under a filter are
//!   *estimated* from the hit rate, never read from block metadata;
//! * **Planning** ([`RowPlan`]) — per-group shift, boundaries, and the
//!   calculation rate, sized as the *maximum* over groups of
//!   `m_g / (share_g · M)` so that every group's expected matched sample
//!   meets the precision target, not just the population average;
//! * **Calculation** ([`execute_row_block`]) — one uniform row draw per
//!   sample, filter evaluated on the tuple, the aggregated value folded
//!   into *that group's* accumulator, per-group iteration per block;
//! * **Summarization** ([`super::GroupedPartial`]) — a per-group
//!   mergeable map that combines in any completion order and weights
//!   each block's per-group answer by its estimated matched row count.
//!
//! [`run_rows`] ties the phases together on any [`BlockScheduler`]; as
//! in the scalar engine, per-block seeds are derived up front so every
//! scheduler returns the bit-identical grouped answer.

use std::collections::BTreeMap;

use rand::RngCore;

use isla_stats::{required_sample_size, NeumaierSum, WelfordMoments};
use isla_storage::{
    sample_rows_proportional, sample_rows_proportional_surviving, with_row_sample_buf, BlockSet,
    DataBlock, RowFilter, SAMPLE_BATCH_ROWS,
};

use super::seed;
use crate::accumulate::SampleAccumulator;
use crate::block_exec::{iteration_phase, Fallback};
use crate::boundaries::DataBoundaries;
use crate::config::IslaConfig;
use crate::error::IslaError;
use crate::shift::compute_shift;

use super::partial::GroupedPartial;
use super::plan::RateSpec;
use super::recovery::RecoveryPolicy;
use super::scheduler::{scan_blocks_recovering, BlockScheduler};
use super::seed::derive_block_seeds;

/// What a row-model query computes: the aggregated column, the compiled
/// predicate, and the optional group-by column.
#[derive(Debug, Clone, PartialEq)]
pub struct RowSpec {
    /// Positional index of the aggregated column.
    pub agg_column: usize,
    /// Compiled `WHERE` conjunction ([`RowFilter::all`] when absent).
    pub filter: RowFilter,
    /// Positional index of the `GROUP BY` column, when grouping.
    pub group_by: Option<usize>,
}

impl RowSpec {
    /// A spec aggregating one column with no predicate and no grouping
    /// (the scalar pipeline's shape).
    pub fn column(agg_column: usize) -> Self {
        Self {
            agg_column,
            filter: RowFilter::all(),
            group_by: None,
        }
    }

    /// Whether the spec is the scalar shape (trivial filter, ungrouped).
    pub fn is_scalar(&self) -> bool {
        self.filter.is_trivial() && self.group_by.is_none()
    }

    /// The widest column index the spec touches.
    fn max_column(&self) -> usize {
        self.agg_column
            .max(self.group_by.unwrap_or(0))
            .max(self.filter.max_column().unwrap_or(0))
    }

    /// Validates the spec against every block's tuple width — per
    /// block, not against the set's widest member, so a heterogeneous
    /// set fails here with a typed error instead of panicking
    /// mid-execution on a narrow block's row.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] when a referenced column is out of
    /// any block's width.
    pub fn validate(&self, data: &BlockSet) -> Result<(), IslaError> {
        for (i, block) in data.iter().enumerate() {
            if self.max_column() >= block.width() {
                return Err(IslaError::InvalidConfig(format!(
                    "row spec references column {} but block {i} rows are {} wide",
                    self.max_column(),
                    block.width()
                )));
            }
        }
        Ok(())
    }

    /// The group key of a row: the group column's value bits, or the
    /// single all-rows key when ungrouped.
    #[inline]
    pub fn group_key(&self, row: &[f64]) -> u64 {
        match self.group_by {
            Some(col) => row[col].to_bits(),
            None => 0f64.to_bits(),
        }
    }

    /// A stable digest of the query shape (aggregated column, predicate,
    /// group-by), used to key pre-estimation caches: a cached estimate
    /// for one shape can never serve another.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.agg_column.hash(&mut h);
        self.group_by.hash(&mut h);
        self.filter.fingerprint().hash(&mut h);
        h.finish()
    }
}

/// Pre-estimation output for one group of a row-model query.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPre {
    /// Group key (bit pattern of the group column value).
    pub key_bits: u64,
    /// Group key as a value.
    pub key: f64,
    /// Estimated standard deviation of the aggregated column within the
    /// group's matching rows (0 for effectively constant groups).
    pub sigma: f64,
    /// The group's sketch estimator.
    pub sketch0: f64,
    /// Fraction of *raw* rows that match the predicate and belong to
    /// this group.
    pub share: f64,
    /// Matched pilot samples behind these estimates.
    pub pilot_matched: u64,
    /// Required matched samples `m_g = ⌈z²σ_g²/e²⌉`.
    pub required_samples: u64,
}

/// Pre-estimation output for a row-model query: per-group estimates
/// plus the predicate's selectivity, all from pilot row draws.
#[derive(Debug, Clone, PartialEq)]
pub struct RowPreEstimate {
    /// Per-group estimates, sorted by key bits.
    pub groups: Vec<GroupPre>,
    /// Estimated fraction of rows matching the predicate.
    pub selectivity: f64,
    /// Derived calculation rate: `max_g m_g / (share_g · M)`, clamped to
    /// `(0, 1]` (0 when every group is constant).
    pub rate: f64,
    /// Raw pilot rows drawn (both pilot passes).
    pub pilot_rows: u64,
}

/// Minimum raw pilot rows behind a non-trivial predicate's hit-rate
/// estimate (relative error ≈ √(1/n) ≈ 1% at moderate selectivity).
pub const SELECTIVITY_PILOT_ROWS: u64 = 10_000;

/// Runs row-model pre-estimation: two pilot passes of proportional row
/// draws, filtered and partitioned by group.
///
/// The first pass (sized like the scalar σ pilot) estimates the
/// selectivity, the group shares, and a first per-group `σ̂`; the second
/// pass extends the draw until the *smallest* group's matched sample
/// supports its relaxed-precision sketch, exactly as the scalar sketch
/// pilot does for the whole column.
///
/// # Errors
///
/// [`IslaError::InsufficientData`] when the data is empty or no pilot
/// row matches the predicate; storage errors from sampling.
pub fn row_pre_estimate(
    data: &BlockSet,
    config: &IslaConfig,
    spec: &RowSpec,
    rng: &mut dyn RngCore,
) -> Result<RowPreEstimate, IslaError> {
    row_pre_estimate_capped(data, config, spec, u64::MAX, rng)
}

/// [`row_pre_estimate`] under an explicit [`RecoveryPolicy`] — the
/// row-model twin of [`crate::pre_estimation::pre_estimate_with`]:
/// strict is byte-for-byte [`row_pre_estimate`]; best-effort draws the
/// pilots through the surviving row sampler (transient retries in
/// place, failed blocks skipped, corrupt rows dropped).
///
/// # Errors
///
/// As [`row_pre_estimate`]; total pilot loss in best-effort mode
/// surfaces as [`IslaError::InsufficientData`].
pub fn row_pre_estimate_with(
    data: &BlockSet,
    config: &IslaConfig,
    spec: &RowSpec,
    recovery: &RecoveryPolicy,
    rng: &mut dyn RngCore,
) -> Result<RowPreEstimate, IslaError> {
    row_pre_estimate_capped_with(data, config, spec, u64::MAX, recovery, rng)
}

/// As [`row_pre_estimate`], with a hard cap on the total pilot rows —
/// the budget-driven path (`SAMPLES n` without a precision) uses this
/// so the pilots can never silently dwarf the caller's explicit budget.
///
/// # Errors
///
/// As [`row_pre_estimate`].
pub fn row_pre_estimate_capped(
    data: &BlockSet,
    config: &IslaConfig,
    spec: &RowSpec,
    max_pilot_rows: u64,
    rng: &mut dyn RngCore,
) -> Result<RowPreEstimate, IslaError> {
    row_pre_estimate_capped_with(
        data,
        config,
        spec,
        max_pilot_rows,
        &RecoveryPolicy::strict(),
        rng,
    )
}

/// [`row_pre_estimate_capped`] under an explicit [`RecoveryPolicy`]
/// (see [`row_pre_estimate_with`]).
///
/// # Errors
///
/// As [`row_pre_estimate`].
pub fn row_pre_estimate_capped_with(
    data: &BlockSet,
    config: &IslaConfig,
    spec: &RowSpec,
    max_pilot_rows: u64,
    recovery: &RecoveryPolicy,
    rng: &mut dyn RngCore,
) -> Result<RowPreEstimate, IslaError> {
    let data_size = data.total_len();
    if data_size == 0 {
        return Err(IslaError::InsufficientData(
            "block set holds no rows".to_string(),
        ));
    }
    spec.validate(data)?;

    let mut st = RowPilotFold::new();

    // Pilot 1: selectivity, group shares, first σ̂ per group.
    let pilot1 = config
        .sigma_pilot_size
        .min(data_size)
        .min(max_pilot_rows)
        .max(2);
    pilot_draw_rows(data, spec, pilot1, recovery, rng, &mut st)?;
    if st.matched == 0 {
        return Err(IslaError::InsufficientData(format!(
            "predicate matched none of {} pilot rows; selectivity is effectively zero",
            st.drawn
        )));
    }

    // Pilot 2: extend until every group's matched sample supports its
    // relaxed-precision sketch (`tₑ·e`), as the scalar sketch pilot —
    // and, under a non-trivial predicate, until the hit rate itself is
    // tight: the selectivity scales `SUM`/`COUNT`, so its relative
    // error (≈ √(1/draws) at moderate selectivity) must not dominate
    // the answer.
    let pilot2 = pilot_extension_want(&st, config, spec)
        .min(data_size)
        .min(max_pilot_rows)
        .saturating_sub(st.drawn);
    if pilot2 > 0 {
        pilot_draw_rows(data, spec, pilot2, recovery, rng, &mut st)?;
    }

    finish_row_pilot_state(st, data_size, config)
}

/// Draws `n` proportional pilot rows into the accumulated pilot state:
/// the shared inner loop of the one-shot and epoch-fold row pilots.
fn pilot_draw_rows(
    data: &BlockSet,
    spec: &RowSpec,
    n: u64,
    recovery: &RecoveryPolicy,
    rng: &mut dyn RngCore,
    st: &mut RowPilotFold,
) -> Result<(), IslaError> {
    let mut fold = |row: &[f64]| {
        st.drawn += 1;
        if spec.filter.matches(row) {
            st.matched += 1;
            let key = spec.group_key(row);
            let entry = st
                .moments
                .entry(key)
                .or_insert_with(|| (f64::from_bits(key), WelfordMoments::new()));
            entry.1.update(row[spec.agg_column]);
        }
    };
    if recovery.is_best_effort() {
        sample_rows_proportional_surviving(data, n, recovery.retry.max_attempts, rng, &mut fold);
        Ok(())
    } else {
        sample_rows_proportional(data, n, rng, &mut fold).map_err(IslaError::from)
    }
}

/// How many *raw* pilot rows the accumulated state wants in total: the
/// second-pilot target (per-group relaxed-precision sample over the
/// group's share, floored by the selectivity pilot under a non-trivial
/// predicate). Pure function of the state — the one-shot and fold paths
/// share it so their extension logic cannot drift.
fn pilot_extension_want(st: &RowPilotFold, config: &IslaConfig, spec: &RowSpec) -> u64 {
    let relaxed_e = config.relaxation * config.precision;
    let mut want_raw = if spec.filter.is_trivial() {
        0
    } else {
        SELECTIVITY_PILOT_ROWS
    };
    for (_, m) in st.moments.values() {
        let sigma = m.std_dev_sample().unwrap_or(0.0);
        if sigma > 0.0 {
            let m_rel = required_sample_size(sigma, relaxed_e, config.confidence);
            let share = m.count() as f64 / st.drawn as f64;
            want_raw = want_raw.max((m_rel as f64 / share).ceil() as u64);
        }
    }
    want_raw
}

/// Turns accumulated pilot state into the final [`RowPreEstimate`] for
/// a data set of `data_size` rows. Shared by the one-shot pilot and the
/// epoch fold's [`finish_row_pilot_fold`], so the two paths compute
/// group estimates, selectivity, and the derived rate with the same
/// arithmetic.
fn finish_row_pilot_state(
    st: RowPilotFold,
    data_size: u64,
    config: &IslaConfig,
) -> Result<RowPreEstimate, IslaError> {
    let drawn = st.drawn;
    let selectivity = st.matched as f64 / drawn as f64;
    let mut groups = Vec::with_capacity(st.moments.len());
    let mut rate: f64 = 0.0;
    for (key_bits, (key, m)) in st.moments {
        let sigma = m.std_dev_sample().unwrap_or(0.0);
        let share = m.count() as f64 / drawn as f64;
        let required = if sigma > 0.0 {
            required_sample_size(sigma, config.precision, config.confidence)
        } else {
            1
        };
        if sigma > 0.0 {
            rate = rate.max(required as f64 / (share * data_size as f64));
        }
        groups.push(GroupPre {
            key_bits,
            key,
            sigma,
            sketch0: m.mean().ok_or_else(|| {
                IslaError::Internal("pilot group tracked with no matched samples".to_string())
            })?,
            share,
            pilot_matched: m.count(),
            required_samples: required,
        });
    }
    Ok(RowPreEstimate {
        groups,
        selectivity,
        rate: rate.min(1.0),
        pilot_rows: drawn,
    })
}

/// Resumable state of the **epoch-segmented** row pilot fold — the
/// row-model sibling of [`crate::pre_estimation::PilotFold`]. Per-group
/// [`WelfordMoments`] (keyed by group bits), raw-draw and match
/// counters, and the number of epoch segments folded. Segment pilot
/// streams derive from *(lineage digest, salt, segment index)*, so a
/// cold fold over segments `0..=E` and a cached fold resumed at `k+1`
/// run the identical operation sequence — the bit-identity the
/// epoch-delta cache relies on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowPilotFold {
    moments: BTreeMap<u64, (f64, WelfordMoments)>,
    drawn: u64,
    matched: u64,
    segments: u64,
}

impl RowPilotFold {
    /// The empty fold — the cold-run starting state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of epoch segments folded so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }
}

/// Folds one epoch segment — the blocks `blocks` of `data`, holding
/// rows `..rows_through` cumulatively — into the row pilot state.
///
/// Every sizing decision here is a pure function of the fold state, the
/// segment's own blocks, and `rows_through` (the set's row count *as of
/// that epoch*, from [`isla_storage::EpochMark`]); never of the set's
/// final shape. That is what keeps a cached fold (computed when the
/// segment was the newest) bit-identical to a cold fold replaying the
/// same segment after later appends.
///
/// # Errors
///
/// Storage errors from sampling, and [`IslaError::InvalidConfig`] when
/// the spec does not fit the segment's blocks. The fold should be
/// discarded on error.
#[allow(clippy::too_many_arguments)]
pub fn fold_row_pilot_segment(
    fold: &mut RowPilotFold,
    data: &BlockSet,
    blocks: std::ops::Range<usize>,
    rows_through: u64,
    config: &IslaConfig,
    spec: &RowSpec,
    lineage: u64,
    salt: u64,
) -> Result<(), IslaError> {
    let seg_rows: u64 = blocks.clone().map(|i| data.block(i).len()).sum();
    let segment = fold.segments;
    fold.segments += 1;
    if seg_rows == 0 {
        return Ok(());
    }
    let seg = data.subrange(blocks);
    spec.validate(&seg)?;
    let mut rng = seed::seeded_rng(seed::stream_seed(seed::stream_seed(lineage, salt), segment));
    // Pilot 1 share: the configured pilot over this segment's rows.
    let pilot1 = config.sigma_pilot_size.min(seg_rows).max(2);
    // The fold stays strict in every mode: a partially-folded segment
    // is not resumable, so block failures must surface as errors.
    pilot_draw_rows(
        &seg,
        spec,
        pilot1,
        &RecoveryPolicy::strict(),
        &mut rng,
        fold,
    )?;
    // Pilot 2 share: extend toward the accumulated state's raw-row
    // target, capped by the epoch's cumulative rows (the one-shot's
    // data-size cap, frozen at this segment's epoch) and by the
    // segment itself.
    let pilot2 = pilot_extension_want(fold, config, spec)
        .min(rows_through)
        .saturating_sub(fold.drawn)
        .min(seg_rows);
    if pilot2 > 0 {
        pilot_draw_rows(
            &seg,
            spec,
            pilot2,
            &RecoveryPolicy::strict(),
            &mut rng,
            fold,
        )?;
    }
    Ok(())
}

/// Finishes the row fold into a [`RowPreEstimate`] for the whole of a
/// set with `data_size` rows — required samples and the derived rate
/// come from the final shape, group moments from the accumulated fold.
///
/// # Errors
///
/// [`IslaError::InsufficientData`] when no folded pilot row matched the
/// predicate (selectivity is effectively zero).
pub fn finish_row_pilot_fold(
    fold: &RowPilotFold,
    data_size: u64,
    config: &IslaConfig,
) -> Result<RowPreEstimate, IslaError> {
    if data_size == 0 || fold.drawn == 0 {
        return Err(IslaError::InsufficientData(
            "row pilot fold covered no rows".to_string(),
        ));
    }
    if fold.matched == 0 {
        return Err(IslaError::InsufficientData(format!(
            "predicate matched none of {} pilot rows; selectivity is effectively zero",
            fold.drawn
        )));
    }
    finish_row_pilot_state(fold.clone(), data_size, config)
}

/// One group's resolved execution state inside a [`RowPlan`].
#[derive(Debug, Clone)]
pub struct GroupPlan {
    /// The pre-estimation output backing this group.
    pub pre: GroupPre,
    /// Negative-data translation for this group (0 when none).
    pub shift: f64,
    /// The group's `sketch0` in its shifted domain.
    pub sketch0_shifted: f64,
    /// The group's data boundaries (shifted domain); `None` for
    /// constant groups, whose answer is pinned to `sketch0`.
    pub boundaries: Option<DataBoundaries>,
}

/// A fully resolved row-model plan: validated config, compiled spec,
/// per-group pre-estimates/shifts/boundaries, and the calculation rate.
#[derive(Debug, Clone)]
pub struct RowPlan {
    config: IslaConfig,
    spec: RowSpec,
    groups: Vec<GroupPlan>,
    selectivity: f64,
    pilot_rows: u64,
    rate: f64,
    data_size: u64,
}

impl RowPlan {
    /// Prepares a plan by running row pre-estimation on `data`.
    ///
    /// # Errors
    ///
    /// Invalid configuration/rate/spec, or pre-estimation failures.
    pub fn prepare(
        data: &BlockSet,
        config: &IslaConfig,
        spec: RowSpec,
        rate: RateSpec,
        rng: &mut dyn RngCore,
    ) -> Result<Self, IslaError> {
        config.validate()?;
        rate.validate()?;
        let pre = row_pre_estimate(data, config, &spec, rng)?;
        Self::from_pre_estimate(data, config, spec, pre, rate)
    }

    /// Builds a plan from an already-computed row pre-estimate (e.g.
    /// from a [`super::PreEstimateCache`]), spending no pilot rows.
    ///
    /// # Errors
    ///
    /// Invalid configuration or rate spec.
    pub fn from_pre_estimate(
        data: &BlockSet,
        config: &IslaConfig,
        spec: RowSpec,
        pre: RowPreEstimate,
        rate: RateSpec,
    ) -> Result<Self, IslaError> {
        config.validate()?;
        rate.validate()?;
        spec.validate(data)?;
        let groups = pre
            .groups
            .iter()
            .map(|g| {
                if g.sigma == 0.0 {
                    return GroupPlan {
                        pre: g.clone(),
                        shift: 0.0,
                        sketch0_shifted: g.sketch0,
                        boundaries: None,
                    };
                }
                let shift = compute_shift(config.shift_policy, g.sketch0, g.sigma, config.p2);
                let sketch0_shifted = g.sketch0 + shift;
                GroupPlan {
                    pre: g.clone(),
                    shift,
                    sketch0_shifted,
                    boundaries: Some(DataBoundaries::new(
                        sketch0_shifted,
                        g.sigma,
                        config.p1,
                        config.p2,
                    )),
                }
            })
            .collect();
        Ok(Self {
            config: config.clone(),
            spec,
            groups,
            selectivity: pre.selectivity,
            pilot_rows: pre.pilot_rows,
            rate: rate.resolve(pre.rate),
            data_size: data.total_len(),
        })
    }

    /// A copy of this plan with the calculation rate replaced by an
    /// absolute value (deadline capping); pilots already spent are sunk.
    pub fn with_absolute_rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// The configuration in effect.
    pub fn config(&self) -> &IslaConfig {
        &self.config
    }

    /// The compiled spec.
    pub fn spec(&self) -> &RowSpec {
        &self.spec
    }

    /// Per-group execution state, sorted by group key bits.
    pub fn groups(&self) -> &[GroupPlan] {
        &self.groups
    }

    /// The predicate's estimated selectivity.
    pub fn selectivity(&self) -> f64 {
        self.selectivity
    }

    /// Raw pilot rows the pre-estimation spent.
    pub fn pilot_rows(&self) -> u64 {
        self.pilot_rows
    }

    /// The resolved calculation-phase sampling rate over *raw* rows.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Total rows `M` across blocks at plan time.
    pub fn data_size(&self) -> u64 {
        self.data_size
    }

    /// The raw-row sample size a block of `block_len` rows receives.
    pub fn sample_size_for(&self, block_len: u64) -> u64 {
        (self.rate * block_len as f64).round() as u64
    }

    /// Total calculation-phase row draws the plan will spend over `data`.
    pub fn planned_calculation_samples(&self, data: &BlockSet) -> u64 {
        data.iter().map(|b| self.sample_size_for(b.len())).sum()
    }

    /// Planned draws including the pre-estimation pilot rows.
    pub fn planned_samples_with_pilots(&self, data: &BlockSet) -> u64 {
        self.planned_calculation_samples(data) + self.pilot_rows
    }

    /// Index of the planned group with the given key bits (binary
    /// search — the groups are sorted by key bits).
    pub(crate) fn group_index(&self, key_bits: u64) -> Option<usize> {
        self.groups
            .binary_search_by(|g| g.pre.key_bits.cmp(&key_bits))
            .ok()
    }
}

/// One group's outcome within one block.
#[derive(Debug, Clone)]
pub struct RowGroupOutcome {
    /// Group key bits (canonical identity).
    pub key_bits: u64,
    /// Group key as a value.
    pub key: f64,
    /// Raw draws in this block that matched the predicate and this
    /// group — the block's weight contribution for the group.
    pub matched: u64,
    /// The group's partial answer in this block (original domain).
    pub answer: f64,
    /// `|S|` after sampling.
    pub u: u64,
    /// `|L|` after sampling.
    pub v: u64,
    /// Iterations executed.
    pub iterations: u32,
    /// Whether the answer was clamped to the group's sketch interval.
    pub clamped: bool,
    /// Why the group fell back to its sketch, if it did.
    pub fallback: Option<Fallback>,
    /// Whether the group was known to the plan (seen by the pilots).
    /// Unplanned groups surface with their raw sample mean.
    pub planned: bool,
}

/// The outcome of executing one block under a [`RowPlan`]: per-group
/// partial answers plus the draw accounting that turns matched counts
/// into summarization weights.
#[derive(Debug, Clone)]
pub struct RowBlockOutcome {
    /// Index of the block within its block set.
    pub block_id: usize,
    /// Rows in the block.
    pub rows: u64,
    /// Raw row draws spent on the block.
    pub draws: u64,
    /// Per-group outcomes, sorted by key bits.
    pub groups: Vec<RowGroupOutcome>,
}

/// Executes one block of a row plan with a pre-derived seed — the
/// row-model analogue of [`super::execute_planned_block`].
///
/// # Errors
///
/// Propagates storage errors from sampling.
pub fn execute_row_block(
    plan: &RowPlan,
    block: &dyn DataBlock,
    block_id: usize,
    seed: u64,
) -> Result<RowBlockOutcome, IslaError> {
    let draws = plan.sample_size_for(block.len());
    let mut rng = super::seed::seeded_rng(seed);
    let mut accs: Vec<Option<SampleAccumulator>> = plan
        .groups()
        .iter()
        .map(|g| g.boundaries.map(SampleAccumulator::new))
        .collect();
    let mut matched = vec![0u64; plan.groups().len()];
    // Boundary-less plan groups (constant, or matched by too few pilot
    // rows for a σ̂) fold their calculation draws into a raw mean, so
    // an under-piloted group is answered by its samples rather than
    // pinned to a single pilot value.
    let mut raw: Vec<NeumaierSum> = plan.groups().iter().map(|_| NeumaierSum::new()).collect();
    // Groups the pilots never saw: tracked by raw mean so they still
    // surface in the answer instead of silently vanishing.
    let mut extras: BTreeMap<u64, (NeumaierSum, u64)> = BTreeMap::new();

    // Batched row sampling: tuples are drawn in chunks through the
    // sorted-gather kernel on a reusable thread-local buffer, then
    // folded in draw order — the identical rows, in the identical
    // order, from the identical RNG stream as the scalar per-row loop,
    // so pooled-vs-sequential bit-identity is untouched.
    with_row_sample_buf(|buf| {
        let mut left = draws;
        while left > 0 {
            let take = left.min(SAMPLE_BATCH_ROWS);
            block.sample_rows_batch(take, &mut rng, buf)?;
            for row in buf.iter_rows() {
                if !plan.spec().filter.matches(row) {
                    continue;
                }
                let key_bits = plan.spec().group_key(row);
                let value = row[plan.spec().agg_column];
                match plan.group_index(key_bits) {
                    Some(i) => {
                        matched[i] += 1;
                        match accs[i].as_mut() {
                            Some(acc) => {
                                acc.offer(value + plan.groups()[i].shift);
                            }
                            None => raw[i].add(value),
                        }
                    }
                    None => {
                        let entry = extras.entry(key_bits).or_insert((NeumaierSum::new(), 0));
                        entry.0.add(value);
                        entry.1 += 1;
                    }
                }
            }
            left -= take;
        }
        Ok::<(), IslaError>(())
    })?;

    let mut groups: BTreeMap<u64, RowGroupOutcome> = BTreeMap::new();
    for (i, g) in plan.groups().iter().enumerate() {
        let outcome = match (&accs[i], &g.boundaries) {
            (Some(acc), Some(_)) => {
                let phase = iteration_phase(acc, g.sketch0_shifted, plan.config());
                RowGroupOutcome {
                    key_bits: g.pre.key_bits,
                    key: g.pre.key,
                    matched: matched[i],
                    answer: phase.answer - g.shift,
                    u: acc.u(),
                    v: acc.v(),
                    iterations: phase.iterations,
                    clamped: phase.clamped,
                    fallback: phase.fallback,
                    planned: true,
                }
            }
            // No boundaries: a constant group (the raw mean IS the
            // pinned value) or an under-piloted one (the raw mean of
            // the calculation draws beats the single pilot value);
            // with no draws at all, the pilot sketch is all there is.
            _ => RowGroupOutcome {
                key_bits: g.pre.key_bits,
                key: g.pre.key,
                matched: matched[i],
                answer: if matched[i] > 0 {
                    raw[i].value() / matched[i] as f64
                } else {
                    g.pre.sketch0
                },
                u: 0,
                v: 0,
                iterations: 0,
                clamped: false,
                fallback: (matched[i] == 0).then_some(Fallback::NoSamples),
                planned: true,
            },
        };
        groups.insert(g.pre.key_bits, outcome);
    }
    for (key_bits, (sum, n)) in extras {
        groups.insert(
            key_bits,
            RowGroupOutcome {
                key_bits,
                key: f64::from_bits(key_bits),
                matched: n,
                answer: sum.value() / n as f64,
                u: 0,
                v: 0,
                iterations: 0,
                clamped: false,
                fallback: Some(Fallback::NoSamples),
                planned: false,
            },
        );
    }
    Ok(RowBlockOutcome {
        block_id,
        rows: block.len(),
        draws,
        groups: groups.into_values().collect(),
    })
}

/// One group's finalized estimate.
#[derive(Debug, Clone)]
pub struct GroupEstimate {
    /// The group key value.
    pub key: f64,
    /// The group's approximate AVG.
    pub estimate: f64,
    /// Estimated rows in the group matching the predicate
    /// (the summarization weight; also `SUM = estimate × rows_estimate`).
    pub rows_estimate: f64,
    /// Matched calculation draws behind the estimate.
    pub matched_draws: u64,
    /// Whether the pilots planned this group (false: the estimate is a
    /// raw mean of whatever the calculation phase caught).
    pub planned: bool,
}

/// The engine's complete row-model output.
#[derive(Debug, Clone)]
pub struct GroupedEngineResult {
    /// Per-group estimates, sorted by key value.
    pub groups: Vec<GroupEstimate>,
    /// The overall filtered AVG (weight-combined across groups).
    pub estimate: f64,
    /// Estimated rows matching the predicate across all groups.
    pub matched_rows: f64,
    /// The predicate's estimated selectivity from the pilots.
    pub selectivity: f64,
    /// Total rows `M` across blocks.
    pub data_size: u64,
    /// Calculation-phase row draws (excludes pilots).
    pub total_samples: u64,
    /// Pilot rows spent by pre-estimation.
    pub pilot_samples: u64,
    /// Whether the scheduler's admission policy (deadline budget)
    /// capped the plan.
    pub time_limited: bool,
    /// Present when a best-effort run dropped failed blocks (see
    /// [`crate::engine::EngineResult::degradation`]). `None` means
    /// full coverage.
    pub degradation: Option<super::recovery::Degradation>,
}

/// Prepares a row plan on `data` (running the pilots) and executes it on
/// `scheduler` — the whole row-model pipeline in one call.
///
/// # Errors
///
/// Invalid configuration/rate/spec, pre-estimation failures, or the
/// first block failure.
pub fn run_rows(
    data: &BlockSet,
    config: &IslaConfig,
    spec: RowSpec,
    rate: RateSpec,
    scheduler: &dyn BlockScheduler,
    rng: &mut dyn RngCore,
) -> Result<GroupedEngineResult, IslaError> {
    let plan = RowPlan::prepare(data, config, spec, rate, rng)?;
    run_row_plan(&plan, data, scheduler, rng)
}

/// Executes an already-prepared row plan on `scheduler`.
///
/// The scheduler's admission policy runs first
/// ([`BlockScheduler::admit_rows`] — deadline capping), then per-block
/// seeds are derived from `rng` exactly as in the scalar engine — one
/// `next_u64` per block in block order — and the per-block work fans
/// out at the scheduler's parallelism (placement is by parallelism;
/// custom [`BlockScheduler::execute`] overrides apply to scalar plans
/// only). Grouped partials merge order-invariantly, so every scheduler
/// returns the bit-identical per-group answers for the same RNG stream.
///
/// # Errors
///
/// The first block failure, or [`IslaError::InsufficientData`] when no
/// group holds any weight.
pub fn run_row_plan(
    plan: &RowPlan,
    data: &BlockSet,
    scheduler: &dyn BlockScheduler,
    rng: &mut dyn RngCore,
) -> Result<GroupedEngineResult, IslaError> {
    run_row_plan_with(plan, data, scheduler, &RecoveryPolicy::strict(), rng)
}

/// [`run_row_plan`] under an explicit
/// [`RecoveryPolicy`] — the row-model
/// analogue of [`crate::engine::run_plan_with`]: best-effort runs drop
/// failed blocks, finalize the per-group answers over the survivors,
/// and report the failure accounting and widened half-width.
///
/// # Errors
///
/// Strict mode: the first block failure. Best-effort:
/// [`IslaError::InsufficientData`] when every block failed or no group
/// holds any weight over the survivors.
pub fn run_row_plan_with(
    plan: &RowPlan,
    data: &BlockSet,
    scheduler: &dyn BlockScheduler,
    recovery: &RecoveryPolicy,
    rng: &mut dyn RngCore,
) -> Result<GroupedEngineResult, IslaError> {
    let (plan, time_limited) = scheduler.admit_rows(plan.clone(), data);
    let seeds = derive_block_seeds(rng, data.block_count());
    let (outcomes, failures) = scan_blocks_recovering(
        scheduler.parallelism(),
        data,
        recovery,
        |block_id, block| {
            let outcome = execute_row_block(&plan, block, block_id, seeds[block_id])?;
            if outcome.groups.iter().any(|g| !g.answer.is_finite()) {
                return Err(IslaError::InsufficientData(format!(
                    "block {block_id} produced a non-finite group answer (corrupt data)"
                )));
            }
            Ok(outcome)
        },
    )?;
    if failures.len() >= data.block_count() {
        return Err(IslaError::InsufficientData(
            "every block failed during best-effort execution; no surviving coverage".to_string(),
        ));
    }
    // Per-block scalar answers for the degradation assessment: the
    // block's matched-weighted mean across groups (blocks with no
    // matched draws contribute the overall estimate, i.e. zero spread).
    let mut survivors: Vec<(f64, u64, u64)> = Vec::new(); // (weighted sum, matched, rows)
    let mut partial = GroupedPartial::new();
    for outcome in outcomes.into_iter().flatten() {
        let matched: u64 = outcome.groups.iter().map(|g| g.matched).sum();
        let weighted: f64 = outcome
            .groups
            .iter()
            .map(|g| g.answer * g.matched as f64)
            .sum();
        survivors.push((weighted, matched, outcome.rows));
        partial.absorb(outcome);
    }
    let agg = partial.finalize(&plan)?;
    let degradation = if failures.is_empty() {
        None
    } else {
        let survivor_answers: Vec<(f64, u64)> = survivors
            .iter()
            .map(|&(weighted, matched, rows)| {
                let answer = if matched > 0 {
                    weighted / matched as f64
                } else {
                    agg.estimate
                };
                (answer, rows)
            })
            .collect();
        let lost_rows: u64 = failures.iter().map(|f| data.block(f.block_id).len()).sum();
        let cfg = plan.config();
        Some(super::recovery::Degradation::assess(
            failures,
            &survivor_answers,
            lost_rows,
            cfg.precision,
            cfg.confidence,
        ))
    };
    Ok(GroupedEngineResult {
        groups: agg.groups,
        estimate: agg.estimate,
        matched_rows: agg.matched_rows,
        selectivity: plan.selectivity(),
        data_size: plan.data_size(),
        total_samples: agg.total_samples,
        pilot_samples: plan.pilot_rows(),
        time_limited,
        degradation,
    })
}

/// One group's exact aggregate from a full scan.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupExact {
    /// The group key value.
    pub key: f64,
    /// Exact mean of the aggregated column over matching rows.
    pub mean: f64,
    /// Exact count of matching rows.
    pub count: u64,
}

/// Computes exact per-group filtered aggregates by scanning every row —
/// the `METHOD EXACT` ground truth for row-model queries.
///
/// Returns groups sorted by key value; ungrouped specs yield a single
/// entry. An empty result means no row matched the predicate.
///
/// # Errors
///
/// Scan failures (e.g. virtual blocks past their cap).
pub fn scan_exact_groups(data: &BlockSet, spec: &RowSpec) -> Result<Vec<GroupExact>, IslaError> {
    spec.validate(data)?;
    let mut sums: BTreeMap<u64, (f64, NeumaierSum, u64)> = BTreeMap::new();
    data.scan_all_rows(&mut |row| {
        if spec.filter.matches(row) {
            let key_bits = spec.group_key(row);
            let entry =
                sums.entry(key_bits)
                    .or_insert((f64::from_bits(key_bits), NeumaierSum::new(), 0));
            entry.1.add(row[spec.agg_column]);
            entry.2 += 1;
        }
    })
    .map_err(IslaError::from)?;
    let mut out: Vec<GroupExact> = sums
        .into_values()
        .map(|(key, sum, count)| GroupExact {
            key,
            mean: sum.value() / count as f64,
            count,
        })
        .collect();
    out.sort_by(|a, b| a.key.total_cmp(&b.key));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PooledScheduler, SequentialScheduler};
    use isla_storage::{CmpOp, ColumnPredicate, RowsBlock};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    /// Three groups (0, 1, 2) with means 80 / 100 / 120 on x, a `y`
    /// column correlated with x, deterministic in `seed`.
    fn grouped_set(n: usize, blocks: usize, seed: u64) -> BlockSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut region = Vec::with_capacity(n);
        let normal = isla_stats::distributions::Normal::new(0.0, 1.0);
        use isla_stats::distributions::Distribution;
        for _ in 0..n {
            let r = rng.random_range(0..3u64) as f64;
            let xv = 80.0 + 20.0 * r + 10.0 * normal.sample(&mut rng);
            let yv = 0.5 * xv + 5.0 * normal.sample(&mut rng);
            x.push(xv);
            y.push(yv);
            region.push(r);
        }
        RowsBlock::split(vec![x, y, region], blocks)
    }

    fn filtered_grouped_spec() -> RowSpec {
        RowSpec {
            agg_column: 0,
            filter: RowFilter::new(vec![ColumnPredicate {
                column: 1,
                op: CmpOp::Gt,
                value: 45.0,
            }]),
            group_by: Some(2),
        }
    }

    #[test]
    fn pre_estimation_finds_groups_shares_and_selectivity() {
        let data = grouped_set(120_000, 8, 1);
        let spec = filtered_grouped_spec();
        let mut rng = StdRng::seed_from_u64(2);
        let pre = row_pre_estimate(&data, &config(1.0), &spec, &mut rng).unwrap();
        assert_eq!(pre.groups.len(), 3);
        let exact = scan_exact_groups(&data, &spec).unwrap();
        let exact_sel = exact.iter().map(|g| g.count).sum::<u64>() as f64 / 120_000.0;
        assert!(
            (pre.selectivity - exact_sel).abs() < 0.03,
            "selectivity {} vs exact {exact_sel}",
            pre.selectivity
        );
        for (g, e) in pre.groups.iter().zip(&exact) {
            assert_eq!(g.key, e.key);
            assert!(
                (g.sketch0 - e.mean).abs() < 2.0,
                "group {} sketch {} vs exact {}",
                g.key,
                g.sketch0,
                e.mean
            );
            assert!(g.sigma > 0.0 && g.share > 0.0);
        }
        assert!(pre.rate > 0.0 && pre.rate <= 1.0);
        assert!(pre.pilot_rows >= 1000);
    }

    #[test]
    fn grouped_estimates_meet_precision_against_exact() {
        let data = grouped_set(150_000, 10, 3);
        let spec = filtered_grouped_spec();
        let e = 0.5;
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_rows(
            &data,
            &config(e),
            spec.clone(),
            RateSpec::Derived,
            &SequentialScheduler,
            &mut rng,
        )
        .unwrap();
        let exact = scan_exact_groups(&data, &spec).unwrap();
        assert_eq!(out.groups.len(), exact.len());
        for (g, x) in out.groups.iter().zip(&exact) {
            assert_eq!(g.key, x.key);
            assert!(
                (g.estimate - x.mean).abs() <= e,
                "group {}: estimate {} vs exact {} (e = {e})",
                g.key,
                g.estimate,
                x.mean
            );
            assert!(
                (g.rows_estimate - x.count as f64).abs() / (x.count as f64) < 0.1,
                "group {}: rows {} vs exact {}",
                g.key,
                g.rows_estimate,
                x.count
            );
        }
        assert!(out.total_samples > 0);
        assert!(out.pilot_samples > 0);
        // The overall estimate is the weight-combination of the groups.
        let direct: f64 = out
            .groups
            .iter()
            .map(|g| g.estimate * g.rows_estimate)
            .sum::<f64>()
            / out.matched_rows;
        assert!((out.estimate - direct).abs() < 1e-9);
    }

    #[test]
    fn schedulers_agree_bit_for_bit_on_grouped_answers() {
        let data = grouped_set(60_000, 9, 5);
        let spec = filtered_grouped_spec();
        let run_with = |scheduler: &dyn BlockScheduler| {
            let mut rng = StdRng::seed_from_u64(6);
            run_rows(
                &data,
                &config(1.0),
                spec.clone(),
                RateSpec::Derived,
                scheduler,
                &mut rng,
            )
            .unwrap()
        };
        let sequential = run_with(&SequentialScheduler);
        for workers in [1, 2, 4, 7] {
            let pooled = run_with(&PooledScheduler::new(workers).unwrap());
            assert_eq!(pooled.groups.len(), sequential.groups.len());
            for (p, s) in pooled.groups.iter().zip(&sequential.groups) {
                assert_eq!(p.key, s.key, "{workers} workers");
                assert_eq!(p.estimate, s.estimate, "{workers} workers");
                assert_eq!(p.rows_estimate, s.rows_estimate);
                assert_eq!(p.matched_draws, s.matched_draws);
            }
            assert_eq!(pooled.estimate, sequential.estimate);
            assert_eq!(pooled.total_samples, sequential.total_samples);
        }
    }

    #[test]
    fn scalar_spec_reduces_to_one_group() {
        let data = grouped_set(50_000, 5, 7);
        let spec = RowSpec::column(0);
        assert!(spec.is_scalar());
        let mut rng = StdRng::seed_from_u64(8);
        let out = run_rows(
            &data,
            &config(1.0),
            spec,
            RateSpec::Derived,
            &SequentialScheduler,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.groups.len(), 1);
        assert!((out.selectivity - 1.0).abs() < 1e-12);
        let exact = data.exact_mean().unwrap();
        assert!(
            (out.estimate - exact).abs() < 1.0,
            "estimate {} vs exact {exact}",
            out.estimate
        );
    }

    #[test]
    fn constant_groups_are_pinned_without_sampling_noise() {
        // Column x is constant within each group.
        let n = 10_000;
        let x: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 5.0 } else { 9.0 }).collect();
        let region: Vec<f64> = (0..n).map(|i| f64::from(u32::from(i % 2 == 0))).collect();
        let data = RowsBlock::split(vec![x, region], 4);
        let spec = RowSpec {
            agg_column: 0,
            filter: RowFilter::all(),
            group_by: Some(1),
        };
        let mut rng = StdRng::seed_from_u64(9);
        let out = run_rows(
            &data,
            &config(0.1),
            spec,
            RateSpec::Derived,
            &SequentialScheduler,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.groups.len(), 2);
        assert_eq!(out.groups[0].key, 0.0);
        assert_eq!(out.groups[0].estimate, 9.0);
        assert_eq!(out.groups[1].key, 1.0);
        assert_eq!(out.groups[1].estimate, 5.0);
    }

    #[test]
    fn deadline_scheduler_caps_row_plans_and_reports_it() {
        use crate::engine::DeadlineScheduler;
        let data = grouped_set(100_000, 8, 13);
        let spec = filtered_grouped_spec();
        let cfg = config(0.5);
        let mut rng = StdRng::seed_from_u64(14);
        let plan = RowPlan::prepare(&data, &cfg, spec, RateSpec::Derived, &mut rng).unwrap();
        let wanted = plan.planned_samples_with_pilots(&data);

        let tight = DeadlineScheduler::new(SequentialScheduler, wanted / 2);
        let out = run_row_plan(&plan, &data, &tight, &mut rng).unwrap();
        assert!(out.time_limited, "half the wanted budget must cap");
        assert!(
            out.total_samples + out.pilot_samples <= wanted / 2 + 10,
            "capped run drew {} of budget {}",
            out.total_samples + out.pilot_samples,
            wanted / 2
        );
        assert!(out.total_samples > 0, "some calculation still ran");

        let generous = DeadlineScheduler::new(SequentialScheduler, wanted + 1);
        let out = run_row_plan(&plan, &data, &generous, &mut rng).unwrap();
        assert!(!out.time_limited);
    }

    #[test]
    fn under_piloted_rare_groups_answer_from_their_samples_not_one_pilot_row() {
        // Group 1 holds 0.1% of the rows with values far from group 0:
        // the pilots see at most a stray row of it (σ̂ undefined), so it
        // gets no boundaries — but its calculation draws must still
        // drive the answer instead of a single pilot value.
        let n = 100_000usize;
        let mut rng = StdRng::seed_from_u64(21);
        let mut x = Vec::with_capacity(n);
        let mut region = Vec::with_capacity(n);
        use isla_stats::distributions::{Distribution, Normal};
        let common = Normal::new(100.0, 10.0);
        let rare = Normal::new(500.0, 20.0);
        for i in 0..n {
            if i % 1000 == 0 {
                x.push(rare.sample(&mut rng));
                region.push(1.0);
            } else {
                x.push(common.sample(&mut rng));
                region.push(0.0);
            }
        }
        let data = RowsBlock::split(vec![x, region], 8);
        let spec = RowSpec {
            agg_column: 0,
            filter: RowFilter::all(),
            group_by: Some(1),
        };
        // Fabricate the under-piloted state directly: one pilot row hit
        // the rare group, on an unlucky tail value (430, two σ below
        // the group mean of 500). σ̂ is undefined from one sample, so
        // the plan gives the group no boundaries.
        let pre = RowPreEstimate {
            groups: vec![
                GroupPre {
                    key_bits: 0f64.to_bits(),
                    key: 0.0,
                    sigma: 10.0,
                    sketch0: 100.0,
                    share: 0.999,
                    pilot_matched: 999,
                    required_samples: 1_537,
                },
                GroupPre {
                    key_bits: 1f64.to_bits(),
                    key: 1.0,
                    sigma: 0.0,
                    sketch0: 430.0,
                    share: 0.001,
                    pilot_matched: 1,
                    required_samples: 1,
                },
            ],
            selectivity: 1.0,
            rate: 0.05,
            pilot_rows: 1_000,
        };
        let plan =
            RowPlan::from_pre_estimate(&data, &config(0.5), spec, pre, RateSpec::Derived).unwrap();
        let rare_plan = &plan.groups()[1];
        assert!(rare_plan.pre.pilot_matched < 2);
        assert!(rare_plan.boundaries.is_none());
        let mut rng = StdRng::seed_from_u64(22);
        let out = run_row_plan(&plan, &data, &SequentialScheduler, &mut rng).unwrap();
        let rare_est = out.groups.iter().find(|g| g.key == 1.0).unwrap();
        assert!(rare_est.matched_draws > 0, "rate sampled the rare group");
        assert!(
            (rare_est.estimate - 500.0).abs() < 40.0,
            "rare group estimate {} should track its population (≈500), not the \
             single unlucky pilot row at 430",
            rare_est.estimate
        );
    }

    #[test]
    fn heterogeneous_block_widths_are_rejected_not_panicked() {
        use isla_storage::MemBlock;
        use std::sync::Arc;
        let data = BlockSet::new(vec![
            Arc::new(MemBlock::new(vec![1.0; 100])) as Arc<dyn isla_storage::DataBlock>,
            Arc::new(RowsBlock::new(vec![vec![1.0; 100], vec![2.0; 100]])),
        ]);
        let spec = RowSpec {
            agg_column: 0,
            filter: RowFilter::new(vec![ColumnPredicate {
                column: 1,
                op: CmpOp::Gt,
                value: 0.0,
            }]),
            group_by: None,
        };
        assert!(matches!(
            spec.validate(&data),
            Err(IslaError::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_selectivity_predicates_are_rejected_at_pre_estimation() {
        let data = grouped_set(5_000, 3, 10);
        let spec = RowSpec {
            agg_column: 0,
            filter: RowFilter::new(vec![ColumnPredicate {
                column: 0,
                op: CmpOp::Gt,
                value: 1e9,
            }]),
            group_by: None,
        };
        let mut rng = StdRng::seed_from_u64(11);
        assert!(matches!(
            row_pre_estimate(&data, &config(0.5), &spec, &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
    }

    #[test]
    fn specs_validate_column_bounds_and_fingerprint_shapes() {
        let data = grouped_set(1_000, 2, 12);
        let bad = RowSpec {
            agg_column: 5,
            filter: RowFilter::all(),
            group_by: None,
        };
        assert!(matches!(
            bad.validate(&data),
            Err(IslaError::InvalidConfig(_))
        ));

        let scalar = RowSpec::column(0);
        let filtered = filtered_grouped_spec();
        let ungrouped = RowSpec {
            group_by: None,
            ..filtered_grouped_spec()
        };
        assert_ne!(scalar.fingerprint(), filtered.fingerprint());
        assert_ne!(filtered.fingerprint(), ungrouped.fingerprint());
        assert_eq!(
            filtered.fingerprint(),
            filtered_grouped_spec().fingerprint()
        );
    }

    #[test]
    fn exact_groups_scan_matches_hand_computation() {
        let data = RowsBlock::split(
            vec![
                vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0],
            ],
            2,
        );
        let spec = RowSpec {
            agg_column: 0,
            filter: RowFilter::new(vec![ColumnPredicate {
                column: 0,
                op: CmpOp::Gt,
                value: 1.5,
            }]),
            group_by: Some(1),
        };
        let exact = scan_exact_groups(&data, &spec).unwrap();
        assert_eq!(
            exact,
            vec![
                GroupExact {
                    key: 0.0,
                    mean: 4.0,
                    count: 2
                },
                GroupExact {
                    key: 1.0,
                    mean: 4.0,
                    count: 3
                },
            ]
        );
    }
}
