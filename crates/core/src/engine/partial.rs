//! Mergeable partial aggregation state.
//!
//! Per-block [`BlockOutcome`]s are independent and weight-combinable, so
//! the Summarization module reduces to an associative merge: partials
//! built on different workers (or machines) combine in any completion
//! order, and [`PartialAggregate::finalize`] re-canonicalizes by block id
//! before the size-weighted combination — making the final answer
//! bit-for-bit identical to a sequential run no matter how the blocks
//! were scheduled.

use crate::block_exec::BlockOutcome;
use crate::error::IslaError;
use crate::summarize::combine_partials;

/// Mergeable per-block aggregation state.
///
/// `merge` is associative and commutative up to the canonical re-ordering
/// performed by [`PartialAggregate::finalize`], so partials may be
/// combined in any completion order (pooled workers, shards, machines)
/// without changing the answer.
#[derive(Debug, Clone, Default)]
pub struct PartialAggregate {
    outcomes: Vec<BlockOutcome>,
    total_samples: u64,
}

/// The finalized product of a partial aggregation.
#[derive(Debug, Clone)]
pub struct FinalAggregate {
    /// The size-weighted combined answer (the paper's Summarization).
    pub estimate: f64,
    /// Per-block outcomes, sorted by block id.
    pub blocks: Vec<BlockOutcome>,
    /// Calculation-phase samples drawn across all blocks.
    pub total_samples: u64,
}

impl PartialAggregate {
    /// An empty partial (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// A partial holding a single block's outcome.
    pub fn from_outcome(outcome: BlockOutcome) -> Self {
        let mut partial = Self::new();
        partial.absorb(outcome);
        partial
    }

    /// Adds one block outcome to this partial.
    pub fn absorb(&mut self, outcome: BlockOutcome) {
        self.total_samples += outcome.samples_drawn;
        self.outcomes.push(outcome);
    }

    /// Merges another partial into this one. Associative: any merge tree
    /// over the same set of outcomes finalizes to the same answer.
    pub fn merge(&mut self, other: PartialAggregate) {
        self.total_samples += other.total_samples;
        self.outcomes.extend(other.outcomes);
    }

    /// Number of block outcomes held.
    pub fn block_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether any outcomes have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Calculation-phase samples across the held outcomes.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// The held outcomes, in absorption order.
    pub fn outcomes(&self) -> &[BlockOutcome] {
        &self.outcomes
    }

    /// Canonicalizes (sorts by block id) and combines the partial answers
    /// weighted by block size.
    ///
    /// # Errors
    ///
    /// [`IslaError::InsufficientData`] when the held blocks carry no rows.
    pub fn finalize(mut self) -> Result<FinalAggregate, IslaError> {
        self.outcomes.sort_by_key(|o| o.block_id);
        debug_assert!(
            self.outcomes
                .windows(2)
                .all(|w| w[0].block_id < w[1].block_id),
            "duplicate block id in partial aggregate"
        );
        let partials: Vec<(f64, u64)> = self.outcomes.iter().map(|o| (o.answer, o.rows)).collect();
        let estimate = combine_partials(&partials)?;
        Ok(FinalAggregate {
            estimate,
            blocks: self.outcomes,
            total_samples: self.total_samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulate::SampleAccumulator;
    use crate::boundaries::DataBoundaries;

    fn outcome(block_id: usize, answer: f64, rows: u64, samples: u64) -> BlockOutcome {
        BlockOutcome {
            block_id,
            answer,
            rows,
            samples_drawn: samples,
            u: 0,
            v: 0,
            dev: None,
            q: 1.0,
            case: None,
            alpha: 0.0,
            iterations: 0,
            clamped: false,
            fallback: None,
            accumulator: SampleAccumulator::new(DataBoundaries::new(100.0, 20.0, 0.5, 2.0)),
            trace: None,
        }
    }

    #[test]
    fn merge_order_does_not_change_the_answer() {
        let outcomes = [
            outcome(0, 10.0, 100, 5),
            outcome(1, 20.0, 300, 6),
            outcome(2, 30.0, 600, 7),
        ];
        let mut forward = PartialAggregate::new();
        for o in &outcomes {
            forward.absorb(o.clone());
        }
        let mut reversed = PartialAggregate::new();
        for o in outcomes.iter().rev() {
            reversed.merge(PartialAggregate::from_outcome(o.clone()));
        }
        let a = forward.finalize().unwrap();
        let b = reversed.finalize().unwrap();
        assert_eq!(a.estimate, b.estimate, "bit-for-bit order invariance");
        assert_eq!(a.total_samples, b.total_samples);
        assert_eq!(a.blocks.len(), 3);
        assert!(a.blocks.windows(2).all(|w| w[0].block_id < w[1].block_id));
    }

    #[test]
    fn finalize_matches_direct_summarization() {
        let partial = PartialAggregate::from_outcome(outcome(1, 110.0, 100, 3));
        let mut merged = PartialAggregate::from_outcome(outcome(0, 10.0, 900, 2));
        merged.merge(partial);
        let out = merged.finalize().unwrap();
        let direct = combine_partials(&[(10.0, 900), (110.0, 100)]).unwrap();
        assert_eq!(out.estimate, direct);
        assert_eq!(out.total_samples, 5);
    }

    #[test]
    fn empty_partial_fails_to_finalize() {
        assert!(matches!(
            PartialAggregate::new().finalize(),
            Err(IslaError::InsufficientData(_))
        ));
    }
}
