//! Mergeable partial aggregation state.
//!
//! Per-block [`BlockOutcome`]s are independent and weight-combinable, so
//! the Summarization module reduces to an associative merge: partials
//! built on different workers (or machines) combine in any completion
//! order, and [`PartialAggregate::finalize`] re-canonicalizes by block id
//! before the size-weighted combination — making the final answer
//! bit-for-bit identical to a sequential run no matter how the blocks
//! were scheduled.

use std::collections::BTreeMap;

use crate::block_exec::BlockOutcome;
use crate::error::IslaError;
use crate::summarize::combine_partials;

use super::rows::{GroupEstimate, RowBlockOutcome, RowPlan};

/// Mergeable per-block aggregation state.
///
/// `merge` is associative and commutative up to the canonical re-ordering
/// performed by [`PartialAggregate::finalize`], so partials may be
/// combined in any completion order (pooled workers, shards, machines)
/// without changing the answer.
#[derive(Debug, Clone, Default)]
pub struct PartialAggregate {
    outcomes: Vec<BlockOutcome>,
    total_samples: u64,
}

/// The finalized product of a partial aggregation.
#[derive(Debug, Clone)]
pub struct FinalAggregate {
    /// The size-weighted combined answer (the paper's Summarization).
    pub estimate: f64,
    /// Per-block outcomes, sorted by block id.
    pub blocks: Vec<BlockOutcome>,
    /// Calculation-phase samples drawn across all blocks.
    pub total_samples: u64,
}

impl PartialAggregate {
    /// An empty partial (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// A partial holding a single block's outcome.
    pub fn from_outcome(outcome: BlockOutcome) -> Self {
        let mut partial = Self::new();
        partial.absorb(outcome);
        partial
    }

    /// Adds one block outcome to this partial.
    pub fn absorb(&mut self, outcome: BlockOutcome) {
        self.total_samples += outcome.samples_drawn;
        self.outcomes.push(outcome);
    }

    /// Merges another partial into this one. Associative: any merge tree
    /// over the same set of outcomes finalizes to the same answer.
    pub fn merge(&mut self, other: PartialAggregate) {
        self.total_samples += other.total_samples;
        self.outcomes.extend(other.outcomes);
    }

    /// Number of block outcomes held.
    pub fn block_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether any outcomes have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Calculation-phase samples across the held outcomes.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// The held outcomes, in absorption order.
    pub fn outcomes(&self) -> &[BlockOutcome] {
        &self.outcomes
    }

    /// Canonicalizes (sorts by block id) and combines the partial answers
    /// weighted by block size.
    ///
    /// # Errors
    ///
    /// [`IslaError::InsufficientData`] when the held blocks carry no rows.
    pub fn finalize(mut self) -> Result<FinalAggregate, IslaError> {
        self.outcomes.sort_by_key(|o| o.block_id);
        debug_assert!(
            self.outcomes
                .windows(2)
                .all(|w| w[0].block_id < w[1].block_id),
            "duplicate block id in partial aggregate"
        );
        let partials: Vec<(f64, u64)> = self.outcomes.iter().map(|o| (o.answer, o.rows)).collect();
        let estimate = combine_partials(&partials)?;
        Ok(FinalAggregate {
            estimate,
            blocks: self.outcomes,
            total_samples: self.total_samples,
        })
    }
}

/// The per-group generalization of [`PartialAggregate`]: a mergeable
/// map from group key to per-block partial answers.
///
/// Like the scalar partial, `merge` is associative and commutative up to
/// the canonical re-ordering performed by [`GroupedPartial::finalize`]
/// (blocks by id, groups by key), so grouped partials built on different
/// workers combine in any completion order and finalize to bit-identical
/// per-group estimates.
#[derive(Debug, Clone, Default)]
pub struct GroupedPartial {
    outcomes: Vec<RowBlockOutcome>,
    total_samples: u64,
}

/// The finalized product of a grouped partial aggregation.
#[derive(Debug, Clone)]
pub struct GroupedAggregate {
    /// Per-group estimates, sorted by key value.
    pub groups: Vec<GroupEstimate>,
    /// The overall filtered AVG (weight-combined across groups).
    pub estimate: f64,
    /// Estimated rows matching the predicate across all groups.
    pub matched_rows: f64,
    /// Calculation-phase row draws across all blocks.
    pub total_samples: u64,
}

impl GroupedPartial {
    /// An empty grouped partial (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// A partial holding a single block's outcome.
    pub fn from_outcome(outcome: RowBlockOutcome) -> Self {
        let mut partial = Self::new();
        partial.absorb(outcome);
        partial
    }

    /// Adds one block outcome to this partial.
    pub fn absorb(&mut self, outcome: RowBlockOutcome) {
        self.total_samples += outcome.draws;
        self.outcomes.push(outcome);
    }

    /// Merges another grouped partial into this one. Associative: any
    /// merge tree over the same outcomes finalizes to the same answer.
    pub fn merge(&mut self, other: GroupedPartial) {
        self.total_samples += other.total_samples;
        self.outcomes.extend(other.outcomes);
    }

    /// Number of block outcomes held.
    pub fn block_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether any outcomes have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Canonicalizes (blocks by id, groups by key) and combines each
    /// group's per-block answers, weighted by the block's estimated
    /// matched row count `|Bⱼ| · matchedⱼ/drawsⱼ` — the row-model
    /// generalization of size-weighted Summarization. Each group's
    /// population size (`rows_estimate`, the `SUM`/`COUNT` scale) pools
    /// the pilot and calculation draws, the lowest-variance estimate
    /// both phases can support. Plan groups that caught no calculation
    /// draw anywhere keep their pilot estimate (`sketch0`).
    ///
    /// # Errors
    ///
    /// [`IslaError::InsufficientData`] when no group carries any weight.
    pub fn finalize(mut self, plan: &RowPlan) -> Result<GroupedAggregate, IslaError> {
        self.outcomes.sort_by_key(|o| o.block_id);
        debug_assert!(
            self.outcomes
                .windows(2)
                .all(|w| w[0].block_id < w[1].block_id),
            "duplicate block id in grouped partial"
        );
        let total_draws: u64 = self.outcomes.iter().map(|o| o.draws).sum();
        let pooled_draws = plan.pilot_rows() + total_draws;
        // key bits → (key, Σw, Σw·answer, Σmatched, planned)
        let mut acc: BTreeMap<u64, (f64, f64, f64, u64, bool)> = BTreeMap::new();
        for outcome in &self.outcomes {
            if outcome.draws == 0 {
                continue;
            }
            let draws = outcome.draws as f64;
            for g in &outcome.groups {
                let w = outcome.rows as f64 * g.matched as f64 / draws;
                let entry = acc
                    .entry(g.key_bits)
                    .or_insert((g.key, 0.0, 0.0, 0, g.planned));
                entry.1 += w;
                entry.2 += w * g.answer;
                entry.3 += g.matched;
                entry.4 &= g.planned;
            }
        }
        // Plan groups the calculation phase missed entirely keep their
        // pilot estimate.
        for g in plan.groups() {
            acc.entry(g.pre.key_bits)
                .or_insert((g.pre.key, 0.0, 0.0, 0, true));
        }
        let mut groups: Vec<GroupEstimate> = acc
            .into_iter()
            .map(|(key_bits, (key, w, wa, matched, planned))| {
                let plan_group = plan.group_index(key_bits).map(|i| &plan.groups()[i]);
                let pilot_matched = plan_group.map_or(0, |g| g.pre.pilot_matched);
                let rows_estimate = plan.data_size() as f64 * (pilot_matched + matched) as f64
                    / pooled_draws as f64;
                let estimate = if w > 0.0 {
                    wa / w
                } else {
                    // No calculation draw matched: the pilot's sketch is
                    // all there is (planned groups only — unplanned
                    // groups exist exactly because a draw matched them).
                    plan_group.map(|g| g.pre.sketch0).unwrap_or(0.0)
                };
                GroupEstimate {
                    key,
                    estimate,
                    rows_estimate,
                    matched_draws: matched,
                    planned,
                }
            })
            .filter(|g| g.rows_estimate > 0.0)
            .collect();
        groups.sort_by(|a, b| a.key.total_cmp(&b.key));
        let matched_rows: f64 = groups.iter().map(|g| g.rows_estimate).sum();
        if matched_rows <= 0.0 || groups.is_empty() {
            return Err(IslaError::InsufficientData(
                "no group carries any weight after summarization".to_string(),
            ));
        }
        let estimate = groups
            .iter()
            .map(|g| g.estimate * g.rows_estimate)
            .sum::<f64>()
            / matched_rows;
        Ok(GroupedAggregate {
            groups,
            estimate,
            matched_rows,
            total_samples: self.total_samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulate::SampleAccumulator;
    use crate::boundaries::DataBoundaries;

    fn outcome(block_id: usize, answer: f64, rows: u64, samples: u64) -> BlockOutcome {
        BlockOutcome {
            block_id,
            answer,
            rows,
            samples_drawn: samples,
            u: 0,
            v: 0,
            dev: None,
            q: 1.0,
            case: None,
            alpha: 0.0,
            iterations: 0,
            clamped: false,
            fallback: None,
            accumulator: SampleAccumulator::new(DataBoundaries::new(100.0, 20.0, 0.5, 2.0)),
            trace: None,
        }
    }

    #[test]
    fn merge_order_does_not_change_the_answer() {
        let outcomes = [
            outcome(0, 10.0, 100, 5),
            outcome(1, 20.0, 300, 6),
            outcome(2, 30.0, 600, 7),
        ];
        let mut forward = PartialAggregate::new();
        for o in &outcomes {
            forward.absorb(o.clone());
        }
        let mut reversed = PartialAggregate::new();
        for o in outcomes.iter().rev() {
            reversed.merge(PartialAggregate::from_outcome(o.clone()));
        }
        let a = forward.finalize().unwrap();
        let b = reversed.finalize().unwrap();
        assert_eq!(a.estimate, b.estimate, "bit-for-bit order invariance");
        assert_eq!(a.total_samples, b.total_samples);
        assert_eq!(a.blocks.len(), 3);
        assert!(a.blocks.windows(2).all(|w| w[0].block_id < w[1].block_id));
    }

    #[test]
    fn finalize_matches_direct_summarization() {
        let partial = PartialAggregate::from_outcome(outcome(1, 110.0, 100, 3));
        let mut merged = PartialAggregate::from_outcome(outcome(0, 10.0, 900, 2));
        merged.merge(partial);
        let out = merged.finalize().unwrap();
        let direct = combine_partials(&[(10.0, 900), (110.0, 100)]).unwrap();
        assert_eq!(out.estimate, direct);
        assert_eq!(out.total_samples, 5);
    }

    #[test]
    fn empty_partial_fails_to_finalize() {
        assert!(matches!(
            PartialAggregate::new().finalize(),
            Err(IslaError::InsufficientData(_))
        ));
    }
}
