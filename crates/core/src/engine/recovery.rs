//! Retry, failure accounting, and CI-widening graceful degradation.
//!
//! The paper's estimator makes partial failure survivable by
//! construction: per-block partial answers merge order-invariantly and
//! combine by size-weighted averaging, so an answer computed from the
//! blocks that *did* respond is still a valid estimate of the surviving
//! coverage — it just carries a wider confidence interval. This module
//! holds the three pieces that turn that observation into policy:
//!
//! * [`RetryPolicy`] — how many attempts each block gets and the
//!   deterministic backoff between them. Retries are worthwhile only
//!   for *transient* failures ([`isla_storage::StorageError::is_transient`]);
//!   permanent errors, corrupt data, and worker panics fail the block
//!   immediately.
//! * [`FailureMode`] — what a failed block does to the query:
//!   [`FailureMode::Strict`] (the default) fails the whole run exactly
//!   as the engine always has; [`FailureMode::BestEffort`] drops the
//!   block, finalizes over the survivors (the size-weighted combine
//!   re-normalizes over surviving rows inherently), and reports a
//!   [`Degradation`].
//! * [`Degradation`] — the honest accounting of a degraded answer:
//!   which blocks failed after how many attempts, the surviving
//!   coverage fraction, and the widened half-width.
//!
//! **Retry law.** Each attempt of block `i` re-seeds its RNG from the
//! same pre-derived `seeds[i]`, so a retried block draws the identical
//! samples as an untroubled first attempt — retries never perturb the
//! answer, only latency. Backoff delays are pure functions of the
//! attempt number (no jitter entropy), so chaos tests reproduce
//! bit-for-bit.
//!
//! **CI-widening law.** Let `c` be the surviving-row fraction and
//! `φ = 1 − c` the lost fraction. The sampling half-width scales as
//! `e/√c` (the same per-row sampling rate now covers only `c` of the
//! population), and the lost blocks contribute a between-block term
//! `z_β · φ · s_b · √(1/b_lost + 1/b_surv)` where `s_b` is the
//! size-weighted standard deviation of the surviving block answers —
//! the exchangeability (blocks-missing-at-random) estimate of how far
//! the lost blocks' mean can sit from the survivors'. The widened
//! half-width is the root-sum-square of the two terms; with fewer than
//! two surviving answers the between-block term is unestimable and
//! only the coverage scaling applies.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use crate::error::IslaError;

/// Deterministic delay schedule between retry attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backoff {
    /// Retry immediately.
    #[default]
    None,
    /// The same delay before every retry.
    Fixed(Duration),
    /// `base · 2^(attempt−1)`, saturating at `cap`.
    Exponential {
        /// Delay before the first retry.
        base: Duration,
        /// Upper bound on any single delay.
        cap: Duration,
    },
}

impl Backoff {
    /// The delay to sleep after failed attempt `attempt` (1-based) —
    /// a pure function of the attempt number, so retry timing carries
    /// no entropy.
    pub fn delay(&self, attempt: u32) -> Duration {
        match *self {
            Backoff::None => Duration::ZERO,
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base, cap } => {
                let factor = 1u32 << attempt.saturating_sub(1).min(16);
                base.saturating_mul(factor).min(cap)
            }
        }
    }
}

/// How many attempts each block gets, and how long to wait between
/// them. The default — one attempt, no backoff — is exactly the
/// engine's historical fail-fast behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per block (the first try included). Clamped to a
    /// minimum of 1.
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            backoff: Backoff::None,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` tries and no backoff.
    pub fn attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            backoff: Backoff::None,
        }
    }

    /// Sets the backoff schedule.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }
}

/// What a block failure does to the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureMode {
    /// Any block failure fails the whole run (the historical default).
    #[default]
    Strict,
    /// Failed blocks are dropped; the answer finalizes over the
    /// survivors with a widened confidence interval and a
    /// [`Degradation`] report.
    BestEffort,
}

/// The scheduler-layer recovery policy: retries plus failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryPolicy {
    /// Per-block retry budget.
    pub retry: RetryPolicy,
    /// Strict or best-effort failure handling.
    pub mode: FailureMode,
}

impl RecoveryPolicy {
    /// The historical contract: one attempt, fail-fast.
    pub fn strict() -> Self {
        Self::default()
    }

    /// Best-effort degradation with the given retry budget.
    pub fn best_effort(retry: RetryPolicy) -> Self {
        Self {
            retry,
            mode: FailureMode::BestEffort,
        }
    }

    /// Whether failed blocks degrade instead of failing the run.
    pub fn is_best_effort(&self) -> bool {
        matches!(self.mode, FailureMode::BestEffort)
    }
}

/// One block's terminal failure: it exhausted its retry budget (or hit
/// a permanent error) and was dropped or failed the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockFailure {
    /// Index of the failed block within its block set.
    pub block_id: usize,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The final attempt's error.
    pub error: String,
}

/// Runs one block's work under a retry policy, converting panics into
/// typed errors.
///
/// Transient errors ([`IslaError::Storage`] whose source
/// `is_transient()`) are retried up to `policy.max_attempts` with the
/// policy's backoff; permanent errors and panics fail immediately —
/// a panic is a bug and a permanent error reproduces on every retry,
/// so spending the budget on either only adds latency.
///
/// # Errors
///
/// `(attempts_made, final_error)` when the block is given up on.
pub fn run_block_recovering<T>(
    policy: &RetryPolicy,
    block_id: usize,
    mut attempt_fn: impl FnMut() -> Result<T, IslaError>,
) -> Result<T, (u32, IslaError)> {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match catch_unwind(AssertUnwindSafe(&mut attempt_fn)) {
            Ok(Ok(value)) => return Ok(value),
            Ok(Err(e)) => {
                let transient = matches!(&e, IslaError::Storage(s) if s.is_transient());
                if transient && attempt < max_attempts {
                    let delay = policy.backoff.delay(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    continue;
                }
                return Err((attempt, e));
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return Err((
                    attempt,
                    IslaError::Internal(format!(
                        "worker panicked while executing block {block_id}: {msg}"
                    )),
                ));
            }
        }
    }
}

/// The honest accounting of a degraded (best-effort) answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Terminal block failures, sorted by block id.
    pub failures: Vec<BlockFailure>,
    /// Rows the failed blocks held (coverage the answer is missing).
    pub lost_rows: u64,
    /// Surviving-row fraction `c = surviving / (surviving + lost)`.
    pub coverage: f64,
    /// The configured half-width `e` the full answer would have carried.
    pub base_half_width: f64,
    /// The half-width honest for the surviving coverage (see the
    /// CI-widening law in the module docs). Always ≥ `base_half_width`.
    pub widened_half_width: f64,
}

impl Degradation {
    /// Assesses the degradation of a run that dropped `failures` and
    /// finalized over `survivor_answers` (per-block `(answer, rows)`
    /// pairs). `precision`/`confidence` are the plan's `e` and `β`.
    ///
    /// A pure function of its arguments — bit-identical across
    /// schedulers and worker counts once `failures` is sorted.
    pub fn assess(
        mut failures: Vec<BlockFailure>,
        survivor_answers: &[(f64, u64)],
        lost_rows: u64,
        precision: f64,
        confidence: f64,
    ) -> Self {
        failures.sort_by_key(|f| f.block_id);
        let surviving_rows: u64 = survivor_answers.iter().map(|&(_, rows)| rows).sum();
        let total = surviving_rows + lost_rows;
        let coverage = if total == 0 {
            0.0
        } else {
            surviving_rows as f64 / total as f64
        };
        let phi = 1.0 - coverage;
        // Sampling term: the planned per-row rate over c of the rows.
        let sampling = if coverage > 0.0 {
            precision / coverage.sqrt()
        } else {
            f64::INFINITY
        };
        // Between-block term: how far the lost blocks' mean may sit
        // from the surviving mean, under block exchangeability.
        let b_surv = survivor_answers.len();
        let b_lost = failures.len();
        let between = if b_surv >= 2 && b_lost >= 1 && surviving_rows > 0 {
            let w_total = surviving_rows as f64;
            let mean = survivor_answers
                .iter()
                .map(|&(a, rows)| a * rows as f64)
                .sum::<f64>()
                / w_total;
            let var = survivor_answers
                .iter()
                .map(|&(a, rows)| rows as f64 * (a - mean) * (a - mean))
                .sum::<f64>()
                / w_total;
            let z = isla_stats::two_sided_z(confidence);
            z * phi * var.sqrt() * (1.0 / b_lost as f64 + 1.0 / b_surv as f64).sqrt()
        } else {
            0.0
        };
        let widened = (sampling * sampling + between * between).sqrt();
        Self {
            failures,
            lost_rows,
            coverage,
            base_half_width: precision,
            widened_half_width: widened.max(precision),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_storage::StorageError;

    #[test]
    fn backoff_is_a_pure_function_of_the_attempt() {
        assert_eq!(Backoff::None.delay(1), Duration::ZERO);
        assert_eq!(
            Backoff::Fixed(Duration::from_millis(5)).delay(3),
            Duration::from_millis(5)
        );
        let exp = Backoff::Exponential {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
        };
        assert_eq!(exp.delay(1), Duration::from_millis(2));
        assert_eq!(exp.delay(2), Duration::from_millis(4));
        assert_eq!(exp.delay(3), Duration::from_millis(8));
        assert_eq!(exp.delay(4), Duration::from_millis(10), "capped");
        assert_eq!(exp.delay(60), Duration::from_millis(10), "shift saturates");
    }

    #[test]
    fn default_policy_is_the_historical_contract() {
        let policy = RecoveryPolicy::default();
        assert_eq!(policy.retry.max_attempts, 1);
        assert_eq!(policy.retry.backoff, Backoff::None);
        assert!(!policy.is_best_effort());
        assert_eq!(policy, RecoveryPolicy::strict());
        assert!(RecoveryPolicy::best_effort(RetryPolicy::attempts(3)).is_best_effort());
    }

    #[test]
    fn transient_errors_retry_and_permanent_errors_do_not() {
        let mut calls = 0u32;
        let out: Result<u32, _> = run_block_recovering(&RetryPolicy::attempts(5), 0, || {
            calls += 1;
            if calls < 3 {
                Err(IslaError::Storage(StorageError::Unavailable {
                    attempt: calls,
                    detail: "flaky".into(),
                }))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3, "recovered on the third attempt");

        let mut calls = 0u32;
        let out: Result<u32, _> = run_block_recovering(&RetryPolicy::attempts(5), 1, || {
            calls += 1;
            Err(IslaError::Storage(StorageError::BlockLost {
                detail: "gone".into(),
            }))
        });
        let (attempts, e) = out.unwrap_err();
        assert_eq!(attempts, 1, "permanent errors are not retried");
        assert_eq!(calls, 1);
        assert!(e.to_string().contains("permanently lost"));
    }

    #[test]
    fn retry_budget_exhaustion_reports_the_attempt_count() {
        let out: Result<u32, _> = run_block_recovering(&RetryPolicy::attempts(3), 2, || {
            Err(IslaError::Storage(StorageError::Unavailable {
                attempt: 0,
                detail: "still down".into(),
            }))
        });
        let (attempts, _) = out.unwrap_err();
        assert_eq!(attempts, 3);
    }

    #[test]
    fn panics_surface_as_typed_internal_errors_without_retry() {
        let mut calls = 0u32;
        let out: Result<u32, _> = run_block_recovering(&RetryPolicy::attempts(4), 7, || {
            calls += 1;
            panic!("poisoned worker");
        });
        let (attempts, e) = out.unwrap_err();
        assert_eq!(attempts, 1, "a panic is a bug, not a retry candidate");
        assert_eq!(calls, 1);
        assert!(matches!(e, IslaError::Internal(_)));
        assert!(e.to_string().contains("block 7"));
        assert!(e.to_string().contains("poisoned worker"));
    }

    fn failure(block_id: usize) -> BlockFailure {
        BlockFailure {
            block_id,
            attempts: 1,
            error: "lost".into(),
        }
    }

    #[test]
    fn degradation_widens_monotonically_with_loss() {
        let survivors = [(100.0, 1000u64), (101.0, 1000), (99.0, 1000)];
        let one = Degradation::assess(vec![failure(3)], &survivors, 1000, 0.5, 0.95);
        assert_eq!(one.failures.len(), 1);
        assert_eq!(one.lost_rows, 1000);
        assert!((one.coverage - 0.75).abs() < 1e-12);
        assert!(one.widened_half_width > one.base_half_width);

        let two = Degradation::assess(vec![failure(3), failure(4)], &survivors, 2000, 0.5, 0.95);
        assert!((two.coverage - 0.6).abs() < 1e-12);
        assert!(
            two.widened_half_width > one.widened_half_width,
            "more loss, wider interval"
        );
    }

    #[test]
    fn degradation_is_deterministic_and_sorts_failures() {
        let survivors = [(100.0, 500u64), (102.0, 700)];
        let a = Degradation::assess(vec![failure(5), failure(1)], &survivors, 800, 0.1, 0.95);
        let b = Degradation::assess(vec![failure(1), failure(5)], &survivors, 800, 0.1, 0.95);
        assert_eq!(a, b, "failure order does not change the assessment");
        assert_eq!(a.failures[0].block_id, 1);
        assert_eq!(a.failures[1].block_id, 5);
    }

    #[test]
    fn lone_survivor_still_widens_by_coverage() {
        let d = Degradation::assess(vec![failure(1)], &[(100.0, 500u64)], 500, 0.5, 0.95);
        assert!((d.coverage - 0.5).abs() < 1e-12);
        // One survivor: no between-block estimate, coverage scaling only.
        assert!((d.widened_half_width - 0.5 / 0.5f64.sqrt()).abs() < 1e-12);

        let none = Degradation::assess(vec![failure(0)], &[], 500, 0.5, 0.95);
        assert_eq!(none.coverage, 0.0);
        assert!(none.widened_half_width.is_infinite());
    }
}
