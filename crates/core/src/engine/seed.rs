//! Deterministic per-block seed derivation.
//!
//! Every scheduler — sequential, pooled, deadline-bounded — derives block
//! RNG seeds the same way: one `next_u64` draw per block, in block order,
//! from the caller's stream. This is the single property that makes the
//! engine's answer independent of *where* and *when* each block runs:
//! the seeds are fixed before any block executes, so a pooled run is
//! bit-identical to a sequential one.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Constructs the engine's RNG from an explicit seed.
///
/// This is the only place the workspace's engine-facing crates are
/// allowed to build an RNG (`isla-analysis` enforces it): funnelling
/// every construction through one function keeps the seed-to-stream
/// mapping single-sourced, so a pooled run stays bit-identical to a
/// sequential one and a change of generator is a one-line, loudly
/// test-breaking event rather than a scattered drift.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child stream seed from a parent `digest` and a `salt` via
/// a splitmix64 finalizer — the same mixing the query layer uses for
/// key-derived pilot streams. Used wherever a deterministic stream must
/// be a pure function of identity rather than of a caller RNG's
/// position: epoch-segment pilot folds (`stream_seed(lineage, salt)`
/// then once more with the segment index) and standing-query per-block
/// streams. The finalizer's avalanche keeps sibling streams
/// uncorrelated even for adjacent salts.
pub fn stream_seed(digest: u64, salt: u64) -> u64 {
    let mut z = digest ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws one seed per block from `rng`, in block order.
///
/// The contract — exactly one `next_u64` call per block, block 0 first —
/// is pinned by a unit test so refactors cannot silently change every
/// answer in the workspace.
pub fn derive_block_seeds(rng: &mut dyn RngCore, block_count: usize) -> Vec<u64> {
    (0..block_count).map(|_| rng.next_u64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_draw_per_block_in_block_order() {
        let mut a = StdRng::seed_from_u64(42);
        let seeds = derive_block_seeds(&mut a, 5);
        let mut b = StdRng::seed_from_u64(42);
        let direct: Vec<u64> = (0..5).map(|_| b.next_u64()).collect();
        assert_eq!(seeds, direct, "derivation must be one next_u64 per block");
    }

    #[test]
    fn pinned_seed_sequence() {
        // The exact sequence the vendored StdRng (xoshiro256**) produces
        // for seed 42. If this test fails, every seeded answer in the
        // workspace has silently changed — do not update the constants
        // without understanding why.
        let mut rng = StdRng::seed_from_u64(42);
        let seeds = derive_block_seeds(&mut rng, 4);
        assert_eq!(
            seeds,
            vec![
                1546998764402558742,
                6990951692964543102,
                12544586762248559009,
                17057574109182124193,
            ]
        );
    }

    #[test]
    fn empty_and_prefix_consistency() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(derive_block_seeds(&mut rng, 0).is_empty());
        // A fresh stream's first k seeds are a prefix of its first n > k.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let short = derive_block_seeds(&mut a, 3);
        let long = derive_block_seeds(&mut b, 8);
        assert_eq!(short, long[..3]);
    }
}
