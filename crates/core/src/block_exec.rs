//! Per-block execution: Algorithm 1 (sampling) + Algorithm 2 (iteration).
//!
//! [`execute_block`] draws the block's share of samples, folds them into a
//! [`SampleAccumulator`], and runs [`iteration_phase`] to produce the
//! block's partial answer. The two phases are public separately because
//! the online-aggregation extension (paper §VII-A) re-runs the iteration
//! phase on accumulators that keep growing across rounds.

use rand::RngCore;

use isla_storage::{with_sample_buf, DataBlock, SAMPLE_BATCH_ROWS};

use crate::accumulate::SampleAccumulator;
use crate::boundaries::DataBoundaries;
use crate::config::IslaConfig;
use crate::deviation::{assess, ModulationCase};
use crate::error::IslaError;
use crate::estimator::LinearEstimator;
use crate::leverage::determine_q;
use crate::modulation::{iterate, IterationStep};

/// Why a block fell back to the sketch estimator instead of iterating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fallback {
    /// The block contributed no samples at all (zero sample share).
    NoSamples,
    /// One of the S/L regions captured no samples, so the leverage
    /// allocation is undefined.
    EmptyRegion,
    /// The Theorem-3 coefficients were undefined for the accumulated
    /// moments (degenerate inputs).
    DegenerateEstimator,
}

/// The outcome of executing one block.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    /// Index of the block within its block set.
    pub block_id: usize,
    /// The partial answer, in the *original* (unshifted) domain.
    pub answer: f64,
    /// Rows in the block (`|Bⱼ|`), the summarization weight.
    pub rows: u64,
    /// Samples drawn in this block.
    pub samples_drawn: u64,
    /// `|S|` after sampling.
    pub u: u64,
    /// `|L|` after sampling.
    pub v: u64,
    /// Deviation degree `|S|/|L|`, when defined.
    pub dev: Option<f64>,
    /// The leverage-allocation parameter `q` used.
    pub q: f64,
    /// The modulation case, when iteration ran.
    pub case: Option<ModulationCase>,
    /// Final leverage degree `α`.
    pub alpha: f64,
    /// Iterations executed.
    pub iterations: u32,
    /// Whether the answer was clamped to the sketch estimator's relaxed
    /// confidence interval (paper §VII-B).
    pub clamped: bool,
    /// Why the block fell back to `sketch0`, if it did.
    pub fallback: Option<Fallback>,
    /// The accumulated sampling state (kept for online refinement).
    pub accumulator: SampleAccumulator,
    /// Iteration trace when requested.
    pub trace: Option<Vec<IterationStep>>,
}

/// Result of the iteration phase alone (shifted domain).
#[derive(Debug, Clone)]
pub struct IterationPhase {
    /// The answer in the shifted domain.
    pub answer: f64,
    /// `q` used (1.0 on fallback).
    pub q: f64,
    /// Case, when iteration ran.
    pub case: Option<ModulationCase>,
    /// Final `α`.
    pub alpha: f64,
    /// Iterations executed.
    pub iterations: u32,
    /// Clamped to the sketch interval?
    pub clamped: bool,
    /// Fallback reason, if any.
    pub fallback: Option<Fallback>,
    /// Iteration trace when requested.
    pub trace: Option<Vec<IterationStep>>,
}

/// Runs Algorithm 2 (plus the §VII-B interval clamp) over accumulated
/// sampling state. `sketch0` must be in the same (shifted) domain as the
/// accumulator's boundaries.
pub fn iteration_phase(
    accumulator: &SampleAccumulator,
    sketch0: f64,
    config: &IslaConfig,
) -> IterationPhase {
    let (u, v) = (accumulator.u(), accumulator.v());
    let fallback = |reason: Fallback| IterationPhase {
        answer: sketch0,
        q: 1.0,
        case: None,
        alpha: 0.0,
        iterations: 0,
        clamped: false,
        fallback: Some(reason),
        trace: None,
    };
    if accumulator.total_offered() == 0 {
        return fallback(Fallback::NoSamples);
    }
    if u == 0 || v == 0 {
        return fallback(Fallback::EmptyRegion);
    }
    let dev = u as f64 / v as f64;
    let q = determine_q(dev, config);
    let Some(estimator) =
        LinearEstimator::from_moments(accumulator.param_s(), accumulator.param_l(), q)
    else {
        return fallback(Fallback::DegenerateEstimator);
    };
    let assessment = assess(u, v, estimator.c - sketch0, config);
    let outcome = iterate(&estimator, sketch0, assessment.case, config);

    // Modulation boundary (paper §VII-B): the sketch estimator's relaxed
    // confidence interval is an assurance on µ; answers outside it are
    // artifacts of over-strong leverage effects.
    let mut answer = outcome.answer;
    let mut clamped = false;
    if config.clamp_to_sketch_interval {
        let half = config.relaxation * config.precision;
        let (lo, hi) = (sketch0 - half, sketch0 + half);
        if answer < lo {
            answer = lo;
            clamped = true;
        } else if answer > hi {
            answer = hi;
            clamped = true;
        }
    }

    IterationPhase {
        answer,
        q,
        case: Some(outcome.case),
        alpha: outcome.alpha,
        iterations: outcome.iterations,
        clamped,
        fallback: None,
        trace: outcome.trace,
    }
}

/// Executes both phases on one block.
///
/// `boundaries` and `sketch0_shifted` live in the shifted domain
/// (`value + shift`); the returned answer is translated back.
///
/// # Errors
///
/// Propagates storage errors from sampling.
#[allow(clippy::too_many_arguments)]
pub fn execute_block(
    block: &dyn DataBlock,
    block_id: usize,
    sample_size: u64,
    boundaries: DataBoundaries,
    sketch0_shifted: f64,
    shift: f64,
    config: &IslaConfig,
    rng: &mut dyn RngCore,
) -> Result<BlockOutcome, IslaError> {
    let mut accumulator = SampleAccumulator::new(boundaries);
    if sample_size > 0 {
        // Batched sampling kernel: whole chunks are drawn with a sorted
        // gather on a reusable thread-local buffer, then folded in draw
        // order — bit-identical values and RNG stream to the scalar
        // per-sample loop this replaces, with statically dispatched
        // accumulation.
        with_sample_buf(|buf| {
            let mut left = sample_size;
            while left > 0 {
                let take = left.min(SAMPLE_BATCH_ROWS);
                block.sample_batch(take, rng, buf)?;
                for &value in buf.values() {
                    accumulator.offer(value + shift);
                }
                left -= take;
            }
            Ok::<(), IslaError>(())
        })?;
    }
    let phase = iteration_phase(&accumulator, sketch0_shifted, config);
    Ok(BlockOutcome {
        block_id,
        answer: phase.answer - shift,
        rows: block.len(),
        samples_drawn: sample_size,
        u: accumulator.u(),
        v: accumulator.v(),
        dev: accumulator.dev(),
        q: phase.q,
        case: phase.case,
        alpha: phase.alpha,
        iterations: phase.iterations,
        clamped: phase.clamped,
        fallback: phase.fallback,
        accumulator,
        trace: phase.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_values;
    use isla_storage::MemBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> IslaConfig {
        IslaConfig::builder().precision(0.5).build().unwrap()
    }

    fn normal_block(n: usize, seed: u64) -> MemBlock {
        MemBlock::new(normal_values(100.0, 20.0, n, seed))
    }

    #[test]
    fn block_answer_lands_near_truth() {
        let block = normal_block(200_000, 1);
        let boundaries = DataBoundaries::new(100.0, 20.0, 0.5, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let out =
            execute_block(&block, 0, 20_000, boundaries, 100.0, 0.0, &cfg(), &mut rng).unwrap();
        assert!(out.fallback.is_none());
        assert!(
            (out.answer - 100.0).abs() < 1.0,
            "block answer {} too far from 100",
            out.answer
        );
        assert_eq!(out.samples_drawn, 20_000);
        assert_eq!(out.rows, 200_000);
        // Roughly 28.6% of normal mass falls in each of S and L.
        let frac = (out.u + out.v) as f64 / 20_000.0;
        assert!((frac - 0.5716).abs() < 0.03, "S∪L fraction {frac}");
    }

    #[test]
    fn shift_round_trips_the_answer() {
        // Same data, translated far negative: answers must agree after
        // the shift is undone.
        let values = normal_values(100.0, 20.0, 100_000, 3);
        let shifted: Vec<f64> = values.iter().map(|v| v - 500.0).collect();
        let boundaries = DataBoundaries::new(100.0, 20.0, 0.5, 2.0);
        let cfg = cfg();

        let mut rng = StdRng::seed_from_u64(4);
        let plain = execute_block(
            &MemBlock::new(values),
            0,
            10_000,
            boundaries,
            100.0,
            0.0,
            &cfg,
            &mut rng,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let moved = execute_block(
            &MemBlock::new(shifted),
            0,
            10_000,
            boundaries,
            100.0,
            500.0,
            &cfg,
            &mut rng,
        )
        .unwrap();
        assert!(
            (plain.answer - (moved.answer + 500.0)).abs() < 1e-9,
            "plain {} vs shifted {}",
            plain.answer,
            moved.answer
        );
        assert_eq!(plain.u, moved.u);
        assert_eq!(plain.v, moved.v);
    }

    #[test]
    fn zero_sample_share_falls_back_to_sketch() {
        let block = normal_block(100, 5);
        let boundaries = DataBoundaries::new(100.0, 20.0, 0.5, 2.0);
        let mut rng = StdRng::seed_from_u64(6);
        let out = execute_block(&block, 3, 0, boundaries, 101.5, 0.0, &cfg(), &mut rng).unwrap();
        assert_eq!(out.fallback, Some(Fallback::NoSamples));
        assert_eq!(out.answer, 101.5);
        assert_eq!(out.block_id, 3);
    }

    #[test]
    fn empty_region_falls_back_to_sketch() {
        // All data sits in the N region ⇒ S and L stay empty.
        let block = MemBlock::new(vec![100.0; 1000]);
        let boundaries = DataBoundaries::new(100.0, 20.0, 0.5, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let out = execute_block(&block, 0, 100, boundaries, 100.2, 0.0, &cfg(), &mut rng).unwrap();
        assert_eq!(out.fallback, Some(Fallback::EmptyRegion));
        assert_eq!(out.answer, 100.2);
        assert_eq!(out.u + out.v, 0);
    }

    #[test]
    fn one_sided_region_falls_back() {
        // Data only below the center: L never fills.
        let block = MemBlock::new(vec![75.0; 1000]); // S region for the boundaries
        let boundaries = DataBoundaries::new(100.0, 20.0, 0.5, 2.0);
        let mut rng = StdRng::seed_from_u64(8);
        let out = execute_block(&block, 0, 100, boundaries, 100.0, 0.0, &cfg(), &mut rng).unwrap();
        assert_eq!(out.fallback, Some(Fallback::EmptyRegion));
        assert!(out.u > 0 && out.v == 0);
    }

    #[test]
    fn clamp_keeps_answer_inside_sketch_interval() {
        // Construct a skewed sample where the iteration would exceed the
        // relaxed interval: tiny sample, far-off sketch.
        let cfg = IslaConfig::builder().precision(0.05).build().unwrap();
        let block = MemBlock::new(
            (0..1000)
                .map(|i| if i % 2 == 0 { 75.0 } else { 130.0 })
                .collect(),
        );
        let boundaries = DataBoundaries::new(100.0, 20.0, 0.5, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        let out = execute_block(&block, 0, 400, boundaries, 100.0, 0.0, &cfg, &mut rng).unwrap();
        let half = cfg.relaxation * cfg.precision;
        assert!(
            out.answer >= 100.0 - half - 1e-12 && out.answer <= 100.0 + half + 1e-12,
            "answer {} outside sketch interval ±{half}",
            out.answer
        );
    }

    #[test]
    fn iteration_phase_is_reusable_for_online_rounds() {
        // Accumulate in two rounds; the second phase run sees both.
        let boundaries = DataBoundaries::new(100.0, 20.0, 0.5, 2.0);
        let cfg = cfg();
        let mut acc = SampleAccumulator::new(boundaries);
        let values = normal_values(100.0, 20.0, 40_000, 10);
        for &v in &values[..20_000] {
            acc.offer(v);
        }
        let first = iteration_phase(&acc, 100.0, &cfg);
        for &v in &values[20_000..] {
            acc.offer(v);
        }
        let second = iteration_phase(&acc, 100.0, &cfg);
        assert!(first.fallback.is_none() && second.fallback.is_none());
        assert!((second.answer - 100.0).abs() < 1.0);
        assert_eq!(acc.total_offered(), 40_000);
    }
}
