//! Negative-data translation (paper footnote 1).
//!
//! The leverage score `hᵢ = aᵢ²/Σa²` is monotone in the value only for
//! positive data, so the paper translates the distribution "along the x
//! axis by the distance of d to make all the data positive … then
//! move\[s\] back the answer by the distance of d".
//!
//! Only S- and L-region samples ever enter the leverage computation, and
//! every such value exceeds the lower S boundary `sketch0 − p2σ`. A shift
//! is therefore needed exactly when that boundary is too close to zero;
//! data further left (TooSmall region) is discarded regardless of sign.

use crate::config::ShiftPolicy;

/// Safety margin, in units of σ, kept between zero and the lower S
/// boundary after shifting. One full σ comfortably covers the sketch
/// estimator's relaxed error (`tₑ·e ≪ σ` in any sane configuration).
const MARGIN_SIGMAS: f64 = 1.0;

/// Computes the translation distance `d ≥ 0` for the given policy.
///
/// With [`ShiftPolicy::Auto`], the shift is the smallest `d` that places
/// the lower S boundary at least `MARGIN_SIGMAS`·σ above zero:
/// `d = max(0, (p2 + 1)·σ − sketch0)`.
pub fn compute_shift(policy: ShiftPolicy, sketch0: f64, sigma: f64, p2: f64) -> f64 {
    match policy {
        ShiftPolicy::None => 0.0,
        ShiftPolicy::Fixed(d) => d,
        ShiftPolicy::Auto => {
            let s_lower = sketch0 - p2 * sigma;
            let required = MARGIN_SIGMAS * sigma;
            (required - s_lower).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_data_needs_no_shift() {
        // Paper defaults: sketch0 ≈ 100, σ = 20, p2 = 2 ⇒ S lower = 60.
        assert_eq!(compute_shift(ShiftPolicy::Auto, 100.0, 20.0, 2.0), 0.0);
    }

    #[test]
    fn near_zero_data_is_shifted_clear_of_zero() {
        // Exponential(γ=0.05): mean 20, σ 20, sketch0 ≈ 20:
        // S lower = 20 − 40 = −20 ⇒ shift = 20 − (−20) = 40.
        let d = compute_shift(ShiftPolicy::Auto, 20.0, 20.0, 2.0);
        assert_eq!(d, 40.0);
        // After shifting, the lower S boundary sits at exactly +σ.
        assert_eq!((20.0 + d) - 2.0 * 20.0, 20.0);
    }

    #[test]
    fn negative_centered_data_is_shifted() {
        let d = compute_shift(ShiftPolicy::Auto, -100.0, 10.0, 2.0);
        assert_eq!(d, 130.0);
        assert!((-100.0 + d) - 2.0 * 10.0 >= 10.0);
    }

    #[test]
    fn fixed_and_none_policies() {
        assert_eq!(
            compute_shift(ShiftPolicy::Fixed(55.0), -100.0, 10.0, 2.0),
            55.0
        );
        assert_eq!(compute_shift(ShiftPolicy::None, -100.0, 10.0, 2.0), 0.0);
    }
}
