//! Standing queries over appendable block sets.
//!
//! A [`ContinuousQuery`] registers an AVG/SUM/COUNT (optionally
//! filtered/grouped) query once — running the pilots and pinning a
//! [`RowPlan`] — and from then on absorbs each sealed append in
//! O(new blocks): the per-block Calculation phase runs only over blocks
//! it has not seen, folding their [`crate::engine::RowBlockOutcome`]s into a held
//! [`GroupedPartial`]. Because each block's seed is a pure function of
//! the registration seed and the block's index
//! ([`seed::stream_seed`]), absorbing a growth history batch-by-batch
//! is bit-identical to absorbing it in one call — the standing query's
//! answer depends on *what* was appended, never on how the appends were
//! batched.
//!
//! The plan itself is deliberately frozen at registration: the paper's
//! scheme prices its sampling rate from the pilot σ̂, and re-piloting on
//! every append would make the standing answer drift with batching.
//! Callers that want the rate re-priced (say, after the data's σ has
//! visibly moved) simply re-register.

use isla_storage::BlockSet;

use crate::config::IslaConfig;
use crate::engine::rows::{execute_row_block, row_pre_estimate, RowPlan, RowSpec};
use crate::engine::seed;
use crate::engine::{GroupedAggregate, GroupedPartial, RateSpec};
use crate::error::IslaError;

/// The scalar answers of a standing query, derived from one finalized
/// snapshot: the filtered AVG, the SUM it implies, and the matching row
/// COUNT — all estimates with the plan's precision.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousAnswer {
    /// Estimated AVG over matching rows.
    pub avg: f64,
    /// Estimated SUM over matching rows (`avg × count`).
    pub sum: f64,
    /// Estimated number of matching rows.
    pub count: f64,
}

/// A registered standing query: a pinned [`RowPlan`] plus the mergeable
/// per-block state absorbed so far.
#[derive(Debug, Clone)]
pub struct ContinuousQuery {
    plan: RowPlan,
    partial: GroupedPartial,
    blocks_seen: usize,
    rows_seen: u64,
    seed: u64,
}

impl ContinuousQuery {
    /// Registers a standing query over `data`: runs the row pilots
    /// (seeded from `seed`), pins the resulting plan, and absorbs every
    /// block already present.
    ///
    /// # Errors
    ///
    /// Invalid spec/config, pilot failures, or block execution errors.
    pub fn register(
        data: &BlockSet,
        config: &IslaConfig,
        spec: RowSpec,
        seed: u64,
    ) -> Result<Self, IslaError> {
        spec.validate(data)?;
        let mut rng = seed::seeded_rng(seed);
        let pre = row_pre_estimate(data, config, &spec, &mut rng)?;
        let plan = RowPlan::from_pre_estimate(data, config, spec, pre, RateSpec::Derived)?;
        let mut query = Self {
            plan,
            partial: GroupedPartial::new(),
            blocks_seen: 0,
            rows_seen: 0,
            seed,
        };
        query.update(data)?;
        Ok(query)
    }

    /// Absorbs every block of `data` this query has not yet seen and
    /// returns how many there were — O(new blocks), the standing-query
    /// contract. Blocks are identified positionally: pass the same
    /// (grown) set the query was registered on, or any snapshot of it
    /// at a later epoch.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] when `data` holds *fewer* blocks
    /// than this query has absorbed (an older snapshot, or a different
    /// set), or when a new block is too narrow for the spec; block
    /// execution errors otherwise.
    pub fn update(&mut self, data: &BlockSet) -> Result<usize, IslaError> {
        let count = data.block_count();
        if count < self.blocks_seen {
            return Err(IslaError::InvalidConfig(format!(
                "standing query has absorbed {} blocks but the set holds only {count} — \
                 update must see the same set at the same or a later epoch",
                self.blocks_seen
            )));
        }
        if count == self.blocks_seen {
            return Ok(0);
        }
        self.plan
            .spec()
            .validate(&data.subrange(self.blocks_seen..count))?;
        let mut absorbed = 0usize;
        for i in self.blocks_seen..count {
            let block = data.block(i);
            let block_seed = seed::stream_seed(self.seed, i as u64);
            let outcome = execute_row_block(&self.plan, block.as_ref(), i, block_seed)?;
            self.partial.absorb(outcome);
            self.rows_seen += block.len();
            absorbed += 1;
        }
        self.blocks_seen = count;
        Ok(absorbed)
    }

    /// Finalizes the absorbed state into per-group estimates without
    /// disturbing it — the standing query keeps running.
    ///
    /// # Errors
    ///
    /// [`IslaError::InsufficientData`] when nothing absorbed carries
    /// weight (e.g. no block has been absorbed yet).
    pub fn snapshot(&self) -> Result<GroupedAggregate, IslaError> {
        self.partial.clone().finalize(&self.plan)
    }

    /// Convenience: a snapshot reduced to the scalar AVG/SUM/COUNT
    /// answers.
    ///
    /// # Errors
    ///
    /// Same as [`ContinuousQuery::snapshot`].
    pub fn answer(&self) -> Result<ContinuousAnswer, IslaError> {
        let agg = self.snapshot()?;
        Ok(ContinuousAnswer {
            avg: agg.estimate,
            sum: agg.estimate * agg.matched_rows,
            count: agg.matched_rows,
        })
    }

    /// The pinned plan (frozen at registration).
    pub fn plan(&self) -> &RowPlan {
        &self.plan
    }

    /// Blocks absorbed so far.
    pub fn blocks_seen(&self) -> usize {
        self.blocks_seen
    }

    /// Rows across absorbed blocks.
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_storage::{CmpOp, ColumnPredicate, RowFilter, RowsBlock};
    use std::sync::Arc;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    fn two_col(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let x = isla_datagen::normal_values(100.0, 20.0, n, seed);
        let y: Vec<f64> = x.iter().map(|v| v * 0.5).collect();
        (x, y)
    }

    fn filtered_spec() -> RowSpec {
        RowSpec {
            agg_column: 0,
            filter: RowFilter::new(vec![ColumnPredicate {
                column: 1,
                op: CmpOp::Gt,
                value: 45.0,
            }]),
            group_by: None,
        }
    }

    #[test]
    fn batched_updates_match_one_shot_absorption_bit_for_bit() {
        let (x, y) = two_col(40_000, 80);
        let mut data = RowsBlock::split(vec![x, y], 4);
        let cfg = config(0.5);
        let mut stepped = ContinuousQuery::register(&data, &cfg, filtered_spec(), 9).unwrap();
        let mut oneshot = stepped.clone();
        // Grow by four single-block seals, updating `stepped` per seal
        // and `oneshot` only at the end.
        for i in 0..4u64 {
            let (x2, y2) = two_col(5_000, 81 + i);
            data.append_block(Arc::new(RowsBlock::new(vec![x2, y2])))
                .unwrap();
            assert_eq!(stepped.update(&data).unwrap(), 1);
        }
        assert_eq!(oneshot.update(&data).unwrap(), 4);
        assert_eq!(stepped.blocks_seen(), 8);
        assert_eq!(stepped.rows_seen(), 60_000);
        let a = stepped.answer().unwrap();
        let b = oneshot.answer().unwrap();
        assert_eq!(a, b, "batching must never change the standing answer");
        assert!(a.avg > 90.0 && a.avg < 110.0);
        assert!(a.count > 0.0 && a.count <= 60_000.0);
        assert!((a.sum - a.avg * a.count).abs() < 1e-9);
    }

    #[test]
    fn update_is_idempotent_at_a_fixed_epoch_and_rejects_older_sets() {
        let (x, y) = two_col(20_000, 82);
        let mut data = RowsBlock::split(vec![x, y], 2);
        let cfg = config(0.5);
        let mut q = ContinuousQuery::register(&data, &cfg, filtered_spec(), 11).unwrap();
        let before = q.snapshot().unwrap().estimate;
        assert_eq!(q.update(&data).unwrap(), 0, "nothing new, nothing drawn");
        assert_eq!(q.snapshot().unwrap().estimate, before);
        // A pre-append snapshot taken now...
        let stale = data.clone();
        let (x2, y2) = two_col(3_000, 83);
        data.append_block(Arc::new(RowsBlock::new(vec![x2, y2])))
            .unwrap();
        q.update(&data).unwrap();
        // ...is rejected once the query has absorbed past it.
        assert!(q.update(&stale).is_err(), "older snapshots must be refused");
    }

    #[test]
    fn grouped_standing_query_tracks_every_group() {
        let n = 30_000usize;
        let x = isla_datagen::normal_values(50.0, 10.0, n, 84);
        let g: Vec<f64> = (0..n).map(|i| f64::from((i % 3) as u32)).collect();
        let mut data = RowsBlock::split(vec![x, g], 3);
        let cfg = config(0.5);
        let spec = RowSpec {
            agg_column: 0,
            filter: RowFilter::all(),
            group_by: Some(1),
        };
        let mut q = ContinuousQuery::register(&data, &cfg, spec, 13).unwrap();
        let x2 = isla_datagen::normal_values(50.0, 10.0, 6_000, 85);
        let g2: Vec<f64> = (0..6_000).map(|i| f64::from((i % 3) as u32)).collect();
        data.append_block(Arc::new(RowsBlock::new(vec![x2, g2])))
            .unwrap();
        q.update(&data).unwrap();
        let agg = q.snapshot().unwrap();
        assert_eq!(agg.groups.len(), 3, "all three groups survive appends");
        for group in &agg.groups {
            assert!(group.estimate > 40.0 && group.estimate < 60.0);
        }
    }
}
