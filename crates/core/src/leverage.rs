//! The leverage strategy (paper Section IV): deviation scores, region
//! leverage sums, the allocation parameter `q`, and normalization.
//!
//! For a sample `aᵢ` among the S∪L samples, the deviation score is
//! `hᵢ = aᵢ²/Σa²` (the same score the algorithmic-leveraging literature
//! uses to flag influential points). S samples get the leverage score
//! `1 − hᵢ`, L samples `hᵢ` — in both regions this assigns *larger*
//! leverage to values farther from the middle axis, which carry more
//! information about the distribution's shape.
//!
//! Raw scores are then normalized against two constraints:
//!
//! * **Theorem 2**: the leverages of all participating samples sum to 1
//!   (required for the re-weighted probabilities to sum to 1);
//! * **Constraint 2**: the leverage sums of the S and L regions satisfy
//!   `levSum_S / levSum_L = q·u/v`, proportional to the region counts and
//!   adjusted by the allocation parameter `q` which counteracts a deviated
//!   `sketch0` (Section IV-A.4).

use isla_stats::PowerSums;

use crate::boundaries::Region;
use crate::config::IslaConfig;

/// Picks the leverage-allocation parameter `q` from the deviation degree
/// `dev = |S|/|L|` (paper Section IV-A.4).
///
/// * `dev` within the neutral band → `q = 1`;
/// * moderate deviation → `q′ = q_moderate` (default 5);
/// * strong deviation → `q′ = q_strong` (default 10);
/// * `|S| > |L|` (dev > 1) shrinks the S allocation (`q = 1/q′`),
///   otherwise the L allocation (`q = q′`).
pub fn determine_q(dev: f64, config: &IslaConfig) -> f64 {
    debug_assert!(dev > 0.0, "dev must be positive, got {dev}");
    // Express the deviation symmetrically: max(dev, 1/dev) > 1.
    let magnitude = if dev >= 1.0 { dev } else { 1.0 / dev };
    let q_prime = if magnitude <= config.q_neutral_hi {
        return 1.0;
    } else if magnitude <= config.q_moderate_hi {
        config.q_moderate
    } else {
        config.q_strong
    };
    if dev > 1.0 {
        1.0 / q_prime
    } else {
        q_prime
    }
}

/// The normalized leverage allocation over one block's S/L samples.
///
/// Stores the normalization factors of the paper's Appendix A:
///
/// * `fac_S = (u + v/q)(1 − Σx²/(u·T₂))`
/// * `fac_L = (q·u/v + 1)(Σy²/T₂)`
///
/// where `T₂ = Σx² + Σy²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeverageAllocation {
    q: f64,
    t2: f64,
    fac_s: f64,
    fac_l: f64,
    u: u64,
    v: u64,
}

impl LeverageAllocation {
    /// Builds the allocation from the region power sums and `q`.
    ///
    /// Returns `None` when the allocation is undefined: either region is
    /// empty, or the S/L values are not strictly positive in aggregate
    /// (`Σx² = 0` or `Σy² = 0`), which the shift policy is supposed to
    /// prevent.
    // `!(x > 0.0)` deliberately treats NaN as invalid; `x <= 0.0` would not.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(param_s: &PowerSums, param_l: &PowerSums, q: f64) -> Option<Self> {
        let (u, v) = (param_s.count(), param_l.count());
        if u == 0 || v == 0 {
            return None;
        }
        let t2 = param_s.sum_sq() + param_l.sum_sq();
        if !(t2 > 0.0) || !(param_l.sum_sq() > 0.0) || !(q > 0.0) {
            return None;
        }
        let (uf, vf) = (u as f64, v as f64);
        let fac_s = (uf + vf / q) * (1.0 - param_s.sum_sq() / (uf * t2));
        let fac_l = (q * uf / vf + 1.0) * (param_l.sum_sq() / t2);
        if !(fac_s > 0.0) || !(fac_l > 0.0) {
            return None;
        }
        Some(Self {
            q,
            t2,
            fac_s,
            fac_l,
            u,
            v,
        })
    }

    /// The allocation parameter `q` in effect.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// `T₂ = Σx² + Σy²` over the S∪L samples.
    pub fn t2(&self) -> f64 {
        self.t2
    }

    /// The S normalization factor.
    pub fn fac_s(&self) -> f64 {
        self.fac_s
    }

    /// The L normalization factor.
    pub fn fac_l(&self) -> f64 {
        self.fac_l
    }

    /// Theoretical (target) leverage sum of the S region:
    /// `q·u / (q·u + v)`.
    pub fn lev_sum_s(&self) -> f64 {
        let (u, v) = (self.u as f64, self.v as f64);
        self.q * u / (self.q * u + v)
    }

    /// Theoretical (target) leverage sum of the L region:
    /// `v / (q·u + v)`.
    pub fn lev_sum_l(&self) -> f64 {
        let (u, v) = (self.u as f64, self.v as f64);
        v / (self.q * u + v)
    }

    /// The raw (un-normalized) leverage score of a participating sample.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `region` does not participate.
    pub fn original_leverage(&self, value: f64, region: Region) -> f64 {
        let h = value * value / self.t2;
        match region {
            Region::Small => 1.0 - h,
            Region::Large => h,
            _ => {
                debug_assert!(false, "only S/L samples carry leverages");
                0.0
            }
        }
    }

    /// The normalized leverage of a participating sample
    /// (raw leverage divided by the region's normalization factor).
    pub fn normalized_leverage(&self, value: f64, region: Region) -> f64 {
        let raw = self.original_leverage(value, region);
        match region {
            Region::Small => raw / self.fac_s,
            Region::Large => raw / self.fac_l,
            _ => 0.0,
        }
    }

    /// The re-weighted probability of a participating sample
    /// (paper Eq. 2): `prob = α·lev + (1 − α)/(u + v)`.
    pub fn probability(&self, value: f64, region: Region, alpha: f64) -> f64 {
        let uniform = 1.0 / (self.u + self.v) as f64;
        alpha * self.normalized_leverage(value, region) + (1.0 - alpha) * uniform
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example_params() -> (PowerSums, PowerSums) {
        // Paper §IV-B Example 1 / Table II: S = {4, 5}, L = {8}.
        let param_s: PowerSums = [4.0, 5.0].into_iter().collect();
        let param_l: PowerSums = [8.0].into_iter().collect();
        (param_s, param_l)
    }

    #[test]
    fn table_ii_normalization_factors() {
        let (s, l) = paper_example_params();
        let alloc = LeverageAllocation::new(&s, &l, 1.0).unwrap();
        assert_eq!(alloc.t2(), 105.0);
        // Fac_S = 169/70, Fac_L = 64/35 (Table II).
        assert!((alloc.fac_s() - 169.0 / 70.0).abs() < 1e-12);
        assert!((alloc.fac_l() - 64.0 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn table_ii_leverages_and_probabilities() {
        let (s, l) = paper_example_params();
        let alloc = LeverageAllocation::new(&s, &l, 1.0).unwrap();
        // OriLev: 89/105, 16/21, 64/105 (Table II).
        assert!((alloc.original_leverage(4.0, Region::Small) - 89.0 / 105.0).abs() < 1e-12);
        assert!((alloc.original_leverage(5.0, Region::Small) - 16.0 / 21.0).abs() < 1e-12);
        assert!((alloc.original_leverage(8.0, Region::Large) - 64.0 / 105.0).abs() < 1e-12);
        // NorLev: 178/507, 160/507, 1/3 (Table II).
        assert!((alloc.normalized_leverage(4.0, Region::Small) - 178.0 / 507.0).abs() < 1e-12);
        assert!((alloc.normalized_leverage(5.0, Region::Small) - 160.0 / 507.0).abs() < 1e-12);
        assert!((alloc.normalized_leverage(8.0, Region::Large) - 1.0 / 3.0).abs() < 1e-12);
        // Prob at α = 0.1 accumulates to 5.66489…, which the paper prints
        // rounded as 5.67.
        let alpha = 0.1;
        let answer = 4.0 * alloc.probability(4.0, Region::Small, alpha)
            + 5.0 * alloc.probability(5.0, Region::Small, alpha)
            + 8.0 * alloc.probability(8.0, Region::Large, alpha);
        assert!(
            (answer - 5.664891518737672).abs() < 1e-12,
            "answer {answer}"
        );
    }

    #[test]
    fn theorem_2_probabilities_sum_to_one() {
        let (s, l) = paper_example_params();
        for q in [1.0, 0.2, 5.0] {
            let alloc = LeverageAllocation::new(&s, &l, q).unwrap();
            for alpha in [-0.5, 0.0, 0.1, 0.9] {
                let total = alloc.probability(4.0, Region::Small, alpha)
                    + alloc.probability(5.0, Region::Small, alpha)
                    + alloc.probability(8.0, Region::Large, alpha);
                assert!(
                    (total - 1.0).abs() < 1e-12,
                    "q={q} α={alpha}: Σprob = {total}"
                );
            }
        }
    }

    #[test]
    fn constraint_2_region_sums() {
        let (s, l) = paper_example_params();
        for q in [1.0, 0.2, 5.0, 10.0] {
            let alloc = LeverageAllocation::new(&s, &l, q).unwrap();
            let sum_s = alloc.normalized_leverage(4.0, Region::Small)
                + alloc.normalized_leverage(5.0, Region::Small);
            let sum_l = alloc.normalized_leverage(8.0, Region::Large);
            // levSum_S / levSum_L = q·u/v with u=2, v=1.
            assert!(
                (sum_s / sum_l - q * 2.0).abs() < 1e-9,
                "q={q}: ratio {}",
                sum_s / sum_l
            );
            assert!((sum_s - alloc.lev_sum_s()).abs() < 1e-12);
            assert!((sum_l - alloc.lev_sum_l()).abs() < 1e-12);
            assert!((alloc.lev_sum_s() + alloc.lev_sum_l() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn farther_values_get_larger_leverage() {
        // S region: smaller value (farther from center) → larger leverage.
        let (s, l) = paper_example_params();
        let alloc = LeverageAllocation::new(&s, &l, 1.0).unwrap();
        assert!(
            alloc.original_leverage(4.0, Region::Small)
                > alloc.original_leverage(5.0, Region::Small)
        );
        // L region: larger value (farther from center) → larger leverage.
        let param_l2: PowerSums = [8.0, 9.0].into_iter().collect();
        let alloc2 = LeverageAllocation::new(&s, &param_l2, 1.0).unwrap();
        assert!(
            alloc2.original_leverage(9.0, Region::Large)
                > alloc2.original_leverage(8.0, Region::Large)
        );
    }

    #[test]
    fn allocation_undefined_for_empty_regions() {
        let (s, _) = paper_example_params();
        let empty = PowerSums::new();
        assert!(LeverageAllocation::new(&s, &empty, 1.0).is_none());
        assert!(LeverageAllocation::new(&empty, &s, 1.0).is_none());
        assert!(LeverageAllocation::new(&empty, &empty, 1.0).is_none());
    }

    #[test]
    fn allocation_undefined_for_nonpositive_q_or_zero_squares() {
        let (s, l) = paper_example_params();
        assert!(LeverageAllocation::new(&s, &l, 0.0).is_none());
        assert!(LeverageAllocation::new(&s, &l, -1.0).is_none());
        let zeros: PowerSums = [0.0, 0.0].into_iter().collect();
        assert!(
            LeverageAllocation::new(&s, &zeros, 1.0).is_none(),
            "Σy² = 0 must be rejected"
        );
    }

    #[test]
    fn q_tiers_follow_paper_bands() {
        let cfg = IslaConfig::default();
        // Neutral band (up to 1.03 either way).
        assert_eq!(determine_q(1.0, &cfg), 1.0);
        assert_eq!(determine_q(1.02, &cfg), 1.0);
        assert_eq!(determine_q(0.98, &cfg), 1.0);
        // Moderate band: dev ∈ (0.94,0.97)∪(1.03,1.06) → q′ = 5.
        assert_eq!(determine_q(1.05, &cfg), 1.0 / 5.0, "|S|>|L| shrinks S");
        assert_eq!(determine_q(0.95, &cfg), 5.0, "|S|<|L| boosts S target");
        // Strong: beyond 1.06 → q′ = 10.
        assert_eq!(determine_q(1.2, &cfg), 1.0 / 10.0);
        assert_eq!(determine_q(0.8, &cfg), 10.0);
    }
}
