//! The l-estimator as a closed-form linear function of `α`
//! (paper Theorem 3).
//!
//! Accumulating value × probability over the S/L samples with the
//! normalized leverages gives
//!
//! ```text
//! μ̂ = f(α) = k·α + c
//!
//! c = (Σx + Σy) / (u + v)
//! k = (T₂·Σx − Σx³) / [(1 + v/(q·u)) · (u·T₂ − Σx²)]
//!   + v·Σy³ / [(q·u + v) · Σy²]
//!   − c                                  with T₂ = Σx² + Σy²
//! ```
//!
//! Both coefficients are functions of the power sums alone, which is what
//! frees ISLA from storing samples and from sampling-order sensitivity.
//! At `α = 0` the estimator reduces to `c`, the plain uniform mean of the
//! participating samples.

use isla_stats::PowerSums;

/// The l-estimator `μ̂(α) = k·α + c` for one block's S/L samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearEstimator {
    /// Slope: how strongly the leverage degree `α` modulates the answer.
    pub k: f64,
    /// Intercept: the uniform (leverage-free) mean of the S∪L samples.
    pub c: f64,
}

impl LinearEstimator {
    /// Derives `k` and `c` from the region power sums and the allocation
    /// parameter `q` (Theorem 3).
    ///
    /// Returns `None` under the same conditions as
    /// [`crate::leverage::LeverageAllocation::new`]: an empty region,
    /// non-positive square sums, or non-positive `q`. The caller falls
    /// back to the sketch estimator in that case.
    // `!(x > 0.0)` deliberately treats NaN as invalid; `x <= 0.0` would not.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn from_moments(param_s: &PowerSums, param_l: &PowerSums, q: f64) -> Option<Self> {
        let (u, v) = (param_s.count(), param_l.count());
        if u == 0 || v == 0 || !(q > 0.0) {
            return None;
        }
        let (uf, vf) = (u as f64, v as f64);
        let (sx, sx2, sx3) = (param_s.sum(), param_s.sum_sq(), param_s.sum_cube());
        let (sy, sy2, sy3) = (param_l.sum(), param_l.sum_sq(), param_l.sum_cube());
        let t2 = sx2 + sy2;
        if !(t2 > 0.0) || !(sy2 > 0.0) {
            return None;
        }
        let c = (sx + sy) / (uf + vf);
        let denom_s = (1.0 + vf / (q * uf)) * (uf * t2 - sx2);
        if !(denom_s > 0.0) {
            // Only possible when u = 1 and Σy² ≈ 0, excluded above — but
            // guard against degenerate float inputs.
            return None;
        }
        let s_term = (t2 * sx - sx3) / denom_s;
        let l_term = vf * sy3 / ((q * uf + vf) * sy2);
        let k = s_term + l_term - c;
        (k.is_finite() && c.is_finite()).then_some(Self { k, c })
    }

    /// Evaluates `μ̂(α) = k·α + c`.
    #[inline]
    pub fn evaluate(&self, alpha: f64) -> f64 {
        self.k * alpha + self.c
    }

    /// Whether the slope is too small for `α` to move the estimator
    /// (the modulation then falls back to sketch-only movement).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        // Relative to the intercept's scale so the check is unit-free.
        self.k.abs() <= f64::EPSILON * self.c.abs().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundaries::{DataBoundaries, Region};
    use crate::leverage::LeverageAllocation;

    fn paper_example_params() -> (PowerSums, PowerSums) {
        // Paper §IV-B Example 1: S = {4, 5}, L = {8}.
        (
            [4.0, 5.0].into_iter().collect(),
            [8.0].into_iter().collect(),
        )
    }

    #[test]
    fn paper_example_coefficients() {
        let (s, l) = paper_example_params();
        let est = LinearEstimator::from_moments(&s, &l, 1.0).unwrap();
        // c = 17/3; k = 756/253.5 + 512/192 − 17/3 (hand-derived from
        // Theorem 3 with T₂=105, Σx=9, Σx³=189, Σy³=512).
        assert!((est.c - 17.0 / 3.0).abs() < 1e-12);
        let want_k = 756.0 / 253.5 + 512.0 / 192.0 - 17.0 / 3.0;
        assert!(
            (est.k - want_k).abs() < 1e-12,
            "k = {}, want {want_k}",
            est.k
        );
        // μ̂(0.1) = 5.66489…, which the paper prints rounded as 5.67.
        assert!((est.evaluate(0.1) - 5.664891518737672).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_uniform_mean() {
        let (s, l) = paper_example_params();
        let est = LinearEstimator::from_moments(&s, &l, 1.0).unwrap();
        assert_eq!(est.evaluate(0.0), est.c);
        assert!((est.c - (4.0 + 5.0 + 8.0) / 3.0).abs() < 1e-12);
    }

    /// Theorem 3 must agree exactly with the explicit per-sample
    /// probability accumulation it was derived from.
    #[test]
    fn closed_form_matches_per_sample_accumulation() {
        let boundaries = DataBoundaries::new(100.0, 20.0, 0.5, 2.0);
        // Hand-built S/L sample lists inside the regions.
        let s_vals = [62.0, 70.5, 75.0, 81.0, 88.0, 89.9];
        let l_vals = [110.5, 117.0, 123.0, 131.0, 139.9];
        let param_s: PowerSums = s_vals.iter().copied().collect();
        let param_l: PowerSums = l_vals.iter().copied().collect();
        for q in [1.0, 0.2, 5.0] {
            let est = LinearEstimator::from_moments(&param_s, &param_l, q).unwrap();
            let alloc = LeverageAllocation::new(&param_s, &param_l, q).unwrap();
            for alpha in [-0.3, 0.0, 0.05, 0.4, 1.0] {
                let mut direct = 0.0;
                for &x in &s_vals {
                    assert_eq!(boundaries.classify(x), Region::Small);
                    direct += x * alloc.probability(x, Region::Small, alpha);
                }
                for &y in &l_vals {
                    assert_eq!(boundaries.classify(y), Region::Large);
                    direct += y * alloc.probability(y, Region::Large, alpha);
                }
                let closed = est.evaluate(alpha);
                assert!(
                    (closed - direct).abs() < 1e-9,
                    "q={q} α={alpha}: closed {closed} direct {direct}"
                );
            }
        }
    }

    #[test]
    fn undefined_for_empty_regions_or_bad_q() {
        let (s, l) = paper_example_params();
        let empty = PowerSums::new();
        assert!(LinearEstimator::from_moments(&empty, &l, 1.0).is_none());
        assert!(LinearEstimator::from_moments(&s, &empty, 1.0).is_none());
        assert!(LinearEstimator::from_moments(&s, &l, 0.0).is_none());
        let zeros: PowerSums = [0.0].into_iter().collect();
        assert!(LinearEstimator::from_moments(&s, &zeros, 1.0).is_none());
    }

    #[test]
    fn degeneracy_detection() {
        let good = LinearEstimator { k: 0.5, c: 100.0 };
        assert!(!good.is_degenerate());
        let flat = LinearEstimator { k: 0.0, c: 100.0 };
        assert!(flat.is_degenerate());
        let tiny = LinearEstimator { k: 1e-18, c: 100.0 };
        assert!(tiny.is_degenerate());
    }

    /// Order-insensitivity at the estimator level: permuting samples
    /// leaves (k, c) unchanged because only power sums enter.
    #[test]
    fn permutation_invariance() {
        let mut s_vals = [62.0, 70.5, 75.0, 81.0, 88.0];
        let l_vals = [111.0, 119.0, 127.0];
        let forward: PowerSums = s_vals.iter().copied().collect();
        s_vals.reverse();
        let backward: PowerSums = s_vals.iter().copied().collect();
        let pl: PowerSums = l_vals.iter().copied().collect();
        let a = LinearEstimator::from_moments(&forward, &pl, 1.0).unwrap();
        let b = LinearEstimator::from_moments(&backward, &pl, 1.0).unwrap();
        assert_eq!(a, b);
    }
}
