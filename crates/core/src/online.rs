//! Online aggregation (paper Section VII-A): progressive refinement
//! without storing samples.
//!
//! "In each computing block, paramS and paramL are stored … instead of
//! storing all the samples. … if users would like to continue
//! computations to obtain an answer with a higher precision, then our
//! system can continue computations based on the data boundaries, paramS,
//! and paramL."
//!
//! [`OnlineAggregator`] keeps the data boundaries and the per-block
//! accumulators across rounds; each [`OnlineAggregator::refine`] call
//! draws additional samples into the same accumulators and re-runs only
//! the (cheap) iteration phase.

use rand::RngCore;

use isla_storage::{sample_from_block, BlockSet};

use crate::accumulate::SampleAccumulator;
use crate::block_exec::iteration_phase;
use crate::config::IslaConfig;
use crate::engine::{QueryPlan, RateSpec};
use crate::error::IslaError;
use crate::pre_estimation::PreEstimate;
use crate::summarize::combine_partials;

/// The estimate after an online round.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSnapshot {
    /// Current approximate AVG.
    pub estimate: f64,
    /// Rounds executed so far (the initial round counts as 1).
    pub rounds: u32,
    /// Calculation-phase samples drawn so far, across all rounds.
    pub total_samples: u64,
    /// Per-block `(answer, |S|, |L|)` diagnostics for this snapshot.
    pub block_answers: Vec<(f64, u64, u64)>,
}

/// Progressive ISLA aggregation over a fixed block set.
#[derive(Debug)]
pub struct OnlineAggregator {
    config: IslaConfig,
    data: BlockSet,
    plan: QueryPlan,
    accumulators: Vec<SampleAccumulator>,
    rows: Vec<u64>,
    round_sample_sizes: Vec<u64>,
    rounds: u32,
    total_samples: u64,
}

impl OnlineAggregator {
    /// Runs pre-estimation plus the initial sampling round. The plan
    /// (boundaries, shift, rate) comes from [`crate::engine`] and is
    /// pinned for the aggregator's lifetime — refinement rounds keep
    /// accumulating against the same boundaries.
    ///
    /// # Errors
    ///
    /// As [`crate::IslaAggregator::aggregate`]. Degenerate (σ = 0) data is
    /// rejected here — there is nothing to refine.
    pub fn start(
        data: BlockSet,
        config: IslaConfig,
        rng: &mut dyn RngCore,
    ) -> Result<Self, IslaError> {
        let plan = QueryPlan::prepare(&data, &config, RateSpec::Derived, rng)?;
        if plan.is_degenerate() {
            return Err(IslaError::InsufficientData(
                "constant data needs no online refinement".to_string(),
            ));
        }
        let rows: Vec<u64> = data.iter().map(|b| b.len()).collect();
        let round_sample_sizes: Vec<u64> = rows.iter().map(|&r| plan.sample_size_for(r)).collect();
        let accumulators = vec![SampleAccumulator::new(plan.boundaries()); rows.len()];
        let mut this = Self {
            config,
            data,
            plan,
            accumulators,
            rows,
            round_sample_sizes,
            rounds: 0,
            total_samples: 0,
        };
        this.draw_round(1.0, rng)?;
        Ok(this)
    }

    /// Draws one more round of samples (a `fraction` of the initial
    /// per-block sample sizes) into the persisted accumulators.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] for a non-positive fraction; storage
    /// errors from sampling.
    pub fn refine(
        &mut self,
        fraction: f64,
        rng: &mut dyn RngCore,
    ) -> Result<OnlineSnapshot, IslaError> {
        if !(fraction > 0.0 && fraction.is_finite()) {
            return Err(IslaError::InvalidConfig(format!(
                "refinement fraction must be positive, got {fraction}"
            )));
        }
        self.draw_round(fraction, rng)?;
        self.snapshot()
    }

    fn draw_round(&mut self, fraction: f64, rng: &mut dyn RngCore) -> Result<(), IslaError> {
        for (block, (acc, &base)) in self
            .data
            .iter()
            .zip(self.accumulators.iter_mut().zip(&self.round_sample_sizes))
        {
            let take = (base as f64 * fraction).round() as u64;
            if take == 0 {
                continue;
            }
            let mut block_rng = crate::engine::seed::seeded_rng(rng.next_u64());
            let shift = self.plan.shift();
            sample_from_block(block.as_ref(), take, &mut block_rng, &mut |v| {
                acc.offer(v + shift);
            })?;
            self.total_samples += take;
        }
        self.rounds += 1;
        Ok(())
    }

    /// Re-runs the iteration phase on the current accumulators.
    ///
    /// # Errors
    ///
    /// [`IslaError::InsufficientData`] when no block holds any rows.
    pub fn snapshot(&self) -> Result<OnlineSnapshot, IslaError> {
        let mut partials = Vec::with_capacity(self.accumulators.len());
        let mut block_answers = Vec::with_capacity(self.accumulators.len());
        for (acc, &rows) in self.accumulators.iter().zip(&self.rows) {
            let phase = iteration_phase(acc, self.plan.sketch0_shifted(), &self.config);
            let answer = phase.answer - self.plan.shift();
            partials.push((answer, rows));
            block_answers.push((answer, acc.u(), acc.v()));
        }
        Ok(OnlineSnapshot {
            estimate: combine_partials(&partials)?,
            rounds: self.rounds,
            total_samples: self.total_samples,
            block_answers,
        })
    }

    /// The pre-estimation output of the initial round.
    pub fn pre_estimate(&self) -> &PreEstimate {
        self.plan.pre()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Calculation-phase samples drawn so far.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    #[test]
    fn refinement_accumulates_samples_and_stays_accurate() {
        let ds = normal_dataset(100.0, 20.0, 400_000, 10, 50);
        let mut rng = StdRng::seed_from_u64(1);
        let mut online = OnlineAggregator::start(ds.blocks.clone(), config(1.0), &mut rng).unwrap();
        let first = online.snapshot().unwrap();
        assert_eq!(first.rounds, 1);
        // e = 1.0 is a 95% interval; allow 2e for a single seeded run.
        assert!((first.estimate - ds.true_mean).abs() < 2.0);

        let initial_samples = online.total_samples();
        let second = online.refine(1.0, &mut rng).unwrap();
        assert_eq!(second.rounds, 2);
        assert_eq!(second.total_samples, initial_samples * 2);
        assert!((second.estimate - ds.true_mean).abs() < 2.0);

        // Accumulators really persisted: region counts grow.
        let (_, u1, v1) = first.block_answers[0];
        let (_, u2, v2) = second.block_answers[0];
        assert!(u2 > u1 && v2 > v1);
    }

    #[test]
    fn refinement_tightens_the_estimate_on_average() {
        // Across several seeds, 4 extra rounds should shrink the mean
        // absolute error versus round 1.
        let ds = normal_dataset(100.0, 20.0, 300_000, 5, 51);
        let (mut err1, mut err5) = (0.0, 0.0);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut online =
                OnlineAggregator::start(ds.blocks.clone(), config(2.0), &mut rng).unwrap();
            err1 += (online.snapshot().unwrap().estimate - ds.true_mean).abs();
            for _ in 0..4 {
                online.refine(1.0, &mut rng).unwrap();
            }
            err5 += (online.snapshot().unwrap().estimate - ds.true_mean).abs();
        }
        assert!(
            err5 < err1,
            "5-round error {err5:.4} should beat 1-round error {err1:.4}"
        );
    }

    #[test]
    fn rejects_bad_fraction_and_constant_data() {
        let ds = normal_dataset(100.0, 20.0, 50_000, 5, 52);
        let mut rng = StdRng::seed_from_u64(3);
        let mut online = OnlineAggregator::start(ds.blocks, config(1.0), &mut rng).unwrap();
        assert!(matches!(
            online.refine(0.0, &mut rng),
            Err(IslaError::InvalidConfig(_))
        ));
        assert!(matches!(
            online.refine(f64::NAN, &mut rng),
            Err(IslaError::InvalidConfig(_))
        ));

        let constant = BlockSet::from_values(vec![1.0; 100], 2);
        assert!(matches!(
            OnlineAggregator::start(constant, config(1.0), &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
    }

    #[test]
    fn fractional_refinement_draws_proportionally() {
        let ds = normal_dataset(100.0, 20.0, 100_000, 4, 53);
        let mut rng = StdRng::seed_from_u64(4);
        let mut online = OnlineAggregator::start(ds.blocks, config(1.0), &mut rng).unwrap();
        let base = online.total_samples();
        online.refine(0.5, &mut rng).unwrap();
        let grown = online.total_samples();
        let added = grown - base;
        // Within rounding of half the base round.
        assert!(
            (added as f64 - base as f64 / 2.0).abs() <= online.rows.len() as f64,
            "added {added}, base {base}"
        );
    }
}
