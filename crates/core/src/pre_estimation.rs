//! The Pre-estimation module (paper Section III): sampling rate and the
//! sketch estimator.
//!
//! Two pilot passes over the block set:
//!
//! 1. a fixed-size uniform pilot (proportional across blocks) estimates
//!    the standard deviation `σ`, from which the main sampling rate
//!    `r = z²σ²/(M·e²)` follows (Eq. 1). The paper notes σ "is subject to
//!    error … \[but\] hardly has any effect on the answers" since it only
//!    sizes the sample and the boundaries;
//! 2. a second pilot sized for the *relaxed* precision `tₑ·e` produces
//!    `sketch0` with the relaxed confidence interval
//!    `(sketch0 − tₑ·e, sketch0 + tₑ·e)` — the precision assurance that
//!    later bounds the modulation (Section VII-B).
//!
//! When [`IslaConfig::sketch_sigma`] is set and every block exposes a
//! width-1, all-finite moment sketch, pilot 1 is replaced outright: the
//! exact variance follows from the cached `Σa`/`Σa²` metadata without
//! drawing a single sample. The paper observes that σ error "hardly has
//! any effect on the answers"; here σ becomes exact *and* free.

use rand::RngCore;

use isla_stats::{required_sample_size, sampling_rate, ConfidenceInterval, WelfordMoments};
use isla_storage::{sample_proportional, sample_proportional_surviving, BlockSet, DataBlock};

use crate::config::IslaConfig;
use crate::engine::recovery::RecoveryPolicy;
use crate::engine::seed::{seeded_rng, stream_seed};
use crate::error::IslaError;

/// Output of the Pre-estimation module.
#[derive(Debug, Clone, PartialEq)]
pub struct PreEstimate {
    /// Estimated (or configured) standard deviation `σ`.
    pub sigma: f64,
    /// The sketch estimator's initial value `sketch0`.
    pub sketch0: f64,
    /// Main sampling rate `r = m/M`, clamped to `(0, 1]`.
    pub rate: f64,
    /// Required total sample size `m = ⌈z²σ²/e²⌉`.
    pub required_samples: u64,
    /// Samples consumed by the σ pilot (0 when σ was known).
    pub sigma_pilot_used: u64,
    /// Samples consumed by the sketch pilot.
    pub sketch_pilot_used: u64,
    /// The relaxed confidence interval of `sketch0`
    /// (`± tₑ·e` at confidence `β`).
    pub sketch_interval: ConfidenceInterval,
}

/// Runs pre-estimation over a block set.
///
/// # Errors
///
/// * [`IslaError::InsufficientData`] when the data cannot support the
///   pilots (empty data, or fewer than 2 σ-pilot samples);
/// * [`IslaError::Storage`] on block access failures.
pub fn pre_estimate(
    data: &BlockSet,
    config: &IslaConfig,
    rng: &mut dyn RngCore,
) -> Result<PreEstimate, IslaError> {
    pre_estimate_with(data, config, &RecoveryPolicy::strict(), rng)
}

/// [`pre_estimate`] under an explicit [`RecoveryPolicy`].
///
/// Strict mode is byte-for-byte [`pre_estimate`]: the first block
/// failure fails the pilots. Best-effort mode draws the pilots through
/// the surviving samplers
/// ([`isla_storage::sample_proportional_surviving`]): transient block
/// errors retry in place up to the policy's attempt budget, permanently
/// failed blocks contribute nothing, and non-finite (corrupt) draws are
/// filtered — so the pilot's σ̂ and `sketch0` describe the surviving
/// data the main phase will actually sample. Because fault decorators
/// fail before consuming RNG draws, a recovered pilot consumes the
/// identical stream an untroubled one would, keeping cached
/// pre-estimates deterministic under races.
///
/// Note the epoch-segmented fold ([`fold_pilot_segment`]) stays strict:
/// a partial fold is not resumable, so grown sets surface pilot-phase
/// block failures as errors in either mode.
///
/// # Errors
///
/// As [`pre_estimate`]; in best-effort mode total pilot loss surfaces
/// as [`IslaError::InsufficientData`] rather than a storage error.
pub fn pre_estimate_with(
    data: &BlockSet,
    config: &IslaConfig,
    recovery: &RecoveryPolicy,
    rng: &mut dyn RngCore,
) -> Result<PreEstimate, IslaError> {
    let data_size = data.total_len();
    if data_size == 0 {
        return Err(IslaError::InsufficientData(
            "block set holds no rows".to_string(),
        ));
    }

    // Pilot 1: estimate σ. Skipped when configured; replaced by the
    // exact sketch-derived value when enabled and the metadata covers
    // the whole set.
    let (sigma, sigma_pilot_used) = match config.known_sigma {
        Some(s) => (s, 0),
        None => match sketch_derived_sigma(data, config) {
            Some(s) => (s, 0),
            None => {
                let pilot_size = config.sigma_pilot_size.min(data_size);
                if pilot_size < 2 {
                    return Err(IslaError::InsufficientData(format!(
                        "σ pilot needs at least 2 samples, data has {data_size} rows"
                    )));
                }
                let pilot = draw_pilot(data, pilot_size, recovery, rng)?;
                let moments: WelfordMoments = pilot.into_iter().collect();
                let sigma = moments.std_dev_sample().ok_or_else(|| {
                    IslaError::InsufficientData("σ pilot produced fewer than 2 samples".to_string())
                })?;
                (sigma, pilot_size)
            }
        },
    };

    // Degenerate data (σ = 0): one sample pins the answer exactly; the
    // caller is expected to shortcut on `sigma == 0`.
    if sigma == 0.0 {
        let value = *draw_pilot(data, 1, recovery, rng)?
            .first()
            .ok_or_else(|| IslaError::InsufficientData("pilot drew no samples".to_string()))?;
        return Ok(PreEstimate {
            sigma,
            sketch0: value,
            rate: 1.0 / data_size as f64,
            required_samples: 1,
            sigma_pilot_used,
            sketch_pilot_used: 1,
            sketch_interval: ConfidenceInterval {
                center: value,
                half_width: 0.0,
                confidence: config.confidence,
            },
        });
    }

    // Pilot 2: sketch0 at relaxed precision tₑ·e.
    let relaxed_e = config.relaxation * config.precision;
    let sketch_pilot = required_sample_size(sigma, relaxed_e, config.confidence).min(data_size);
    let samples = draw_pilot(data, sketch_pilot, recovery, rng)?;
    let moments: WelfordMoments = samples.into_iter().collect();
    let sketch0 = moments
        .mean()
        .ok_or_else(|| IslaError::InsufficientData("sketch pilot drew no samples".to_string()))?;

    let required_samples = required_sample_size(sigma, config.precision, config.confidence);
    let rate = sampling_rate(sigma, config.precision, config.confidence, data_size);

    Ok(PreEstimate {
        sigma,
        sketch0,
        rate,
        required_samples,
        sigma_pilot_used,
        sketch_pilot_used: sketch_pilot,
        sketch_interval: ConfidenceInterval {
            center: sketch0,
            half_width: relaxed_e,
            confidence: config.confidence,
        },
    })
}

/// One proportional pilot draw under the recovery policy: the exact
/// historical [`sample_proportional`] in strict mode, the surviving
/// sampler in best-effort mode.
fn draw_pilot(
    data: &BlockSet,
    n: u64,
    recovery: &RecoveryPolicy,
    rng: &mut dyn RngCore,
) -> Result<Vec<f64>, IslaError> {
    if recovery.is_best_effort() {
        Ok(sample_proportional_surviving(
            data,
            n,
            recovery.retry.max_attempts,
            rng,
        ))
    } else {
        Ok(sample_proportional(data, n, rng)?)
    }
}

/// Resumable state of the **epoch-segmented** scalar pilot fold.
///
/// An appendable [`BlockSet`] grows in sealed epochs; this fold runs
/// the σ and sketch pilots one epoch segment at a time and accumulates
/// their [`WelfordMoments`]. The segment streams are derived from the
/// cache key's lineage digest and a salt — never from a caller RNG — so
/// the draw sequence is a pure function of *(lineage, salt, segment
/// index, segment blocks)*. That gives the central delta-maintenance
/// property, pinned by tests: folding segments `0..=E` from an empty
/// state (a cold run) and resuming a cached state at segment `k+1` are
/// the **same** operation sequence, so the finished
/// [`PreEstimate`]s are bit-identical.
///
/// Sequential [`WelfordMoments::update`] folds are exactly resumable
/// (the state after n updates does not depend on where a snapshot was
/// taken), which is what makes the cached state sufficient.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PilotFold {
    sigma_pilot: WelfordMoments,
    sketch_pilot: WelfordMoments,
    sigma_pilot_used: u64,
    sketch_pilot_used: u64,
    segments: u64,
}

impl PilotFold {
    /// The empty fold — the cold-run starting state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of epoch segments folded so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }
}

/// Folds one epoch segment — the blocks `blocks` of `data` — into the
/// pilot state. `lineage` is the cache key's epoch-independent digest
/// and `salt` the pilot-stream salt; together with the fold's segment
/// counter they derive this segment's private RNG stream.
///
/// An empty segment (all its blocks hold zero rows) advances the
/// segment counter and draws nothing.
///
/// # Errors
///
/// [`IslaError::Storage`] on block access failures; the fold's segment
/// counter is advanced, pilot state is partial — discard the fold.
pub fn fold_pilot_segment(
    fold: &mut PilotFold,
    data: &BlockSet,
    blocks: std::ops::Range<usize>,
    config: &IslaConfig,
    lineage: u64,
    salt: u64,
) -> Result<(), IslaError> {
    let seg_rows: u64 = blocks.clone().map(|i| data.block(i).len()).sum();
    let segment = fold.segments;
    fold.segments += 1;
    if seg_rows == 0 {
        return Ok(());
    }
    let seg = data.subrange(blocks);
    let mut rng = seeded_rng(stream_seed(stream_seed(lineage, salt), segment));
    // σ pilot share of the segment: the configured pilot size, capped
    // by the segment (draws are with replacement, so a short segment
    // just contributes fewer points to the accumulated moments).
    if config.known_sigma.is_none() {
        let n1 = config.sigma_pilot_size.min(seg_rows);
        let pilot = sample_proportional(&seg, n1, &mut rng)?;
        for v in pilot {
            fold.sigma_pilot.update(v);
        }
        fold.sigma_pilot_used += n1;
    }
    // Sketch pilot share, sized from the σ̂ accumulated *so far* (a
    // deterministic function of the fold state — both cold and delta
    // runs see the same σ̂ here). At least one draw per non-empty
    // segment keeps sketch0 defined even for degenerate σ.
    let sigma_now = config
        .known_sigma
        .unwrap_or_else(|| fold.sigma_pilot.std_dev_sample().unwrap_or(0.0));
    let relaxed_e = config.relaxation * config.precision;
    let n2 = required_sample_size(sigma_now, relaxed_e, config.confidence).clamp(1, seg_rows);
    let samples = sample_proportional(&seg, n2, &mut rng)?;
    for v in samples {
        fold.sketch_pilot.update(v);
    }
    fold.sketch_pilot_used += n2;
    Ok(())
}

/// Finishes the fold into a [`PreEstimate`] for the *whole* of `data`.
/// Pure function of the fold state, the set's current shape, and the
/// config: `rate` and `required_samples` are recomputed from the final
/// σ̂ and row count, and — when [`IslaConfig::sketch_sigma`] is set — σ
/// comes exactly from the blocks' **hook** sketches (hooks are a pure
/// function of the blocks, unlike the scan-backed sketch cache, whose
/// warmth may differ between a cold and a delta run).
///
/// # Errors
///
/// [`IslaError::InsufficientData`] when the accumulated pilots cannot
/// support an estimate (empty data, or fewer than 2 σ-pilot samples).
pub fn finish_pilot_fold(
    fold: &PilotFold,
    data: &BlockSet,
    config: &IslaConfig,
) -> Result<PreEstimate, IslaError> {
    let data_size = data.total_len();
    if data_size == 0 {
        return Err(IslaError::InsufficientData(
            "block set holds no rows".to_string(),
        ));
    }
    let sigma = match config.known_sigma {
        Some(s) => s,
        None => match hook_sketch_sigma(data, config) {
            Some(s) => s,
            None => fold.sigma_pilot.std_dev_sample().ok_or_else(|| {
                IslaError::InsufficientData("σ pilot fold holds fewer than 2 samples".to_string())
            })?,
        },
    };
    if sigma == 0.0 {
        // Degenerate data: any pilot sample pins the answer (every
        // non-empty segment drew at least one sketch-pilot sample).
        let value = fold
            .sketch_pilot
            .mean()
            .or_else(|| fold.sigma_pilot.mean())
            .ok_or_else(|| IslaError::InsufficientData("pilot fold drew no samples".to_string()))?;
        return Ok(PreEstimate {
            sigma,
            sketch0: value,
            rate: 1.0 / data_size as f64,
            required_samples: 1,
            sigma_pilot_used: fold.sigma_pilot_used,
            sketch_pilot_used: fold.sketch_pilot_used,
            sketch_interval: ConfidenceInterval {
                center: value,
                half_width: 0.0,
                confidence: config.confidence,
            },
        });
    }
    let relaxed_e = config.relaxation * config.precision;
    let sketch0 = fold.sketch_pilot.mean().ok_or_else(|| {
        IslaError::InsufficientData("sketch pilot fold drew no samples".to_string())
    })?;
    Ok(PreEstimate {
        sigma,
        sketch0,
        rate: sampling_rate(sigma, config.precision, config.confidence, data_size),
        required_samples: required_sample_size(sigma, config.precision, config.confidence),
        sigma_pilot_used: fold.sigma_pilot_used,
        sketch_pilot_used: fold.sketch_pilot_used,
        sketch_interval: ConfidenceInterval {
            center: sketch0,
            half_width: relaxed_e,
            confidence: config.confidence,
        },
    })
}

/// [`sketch_derived_sigma`] restricted to the blocks' **hook** sketches
/// ([`isla_storage::DataBlock::sketch`]): a pure function of the block
/// list, independent of how warm the scan-backed sketch cache happens
/// to be. The epoch fold uses this so a cold run and a delta run agree
/// on σ's source bit-for-bit.
fn hook_sketch_sigma(data: &BlockSet, config: &IslaConfig) -> Option<f64> {
    if !config.sketch_sigma {
        return None;
    }
    let mut n = 0u64;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for block in data.iter() {
        let sketch = block.sketch()?;
        if sketch.width() != 1 {
            return None;
        }
        let m = sketch.column(0)?;
        if m.non_finite > 0 {
            return None;
        }
        n += sketch.rows;
        sum += m.sum;
        sum_sq += m.sum_sq;
        min = min.min(m.min);
        max = max.max(m.max);
    }
    if n < 2 {
        return None;
    }
    if min == max {
        return Some(0.0);
    }
    let nf = n as f64;
    let var = (sum_sq - sum * sum / nf) / (nf - 1.0);
    if var > 0.0 {
        Some(var.sqrt())
    } else {
        None
    }
}

/// The exact σ from complete per-block moment sketches, when
/// [`IslaConfig::sketch_sigma`] is set and the metadata suffices: every
/// block must expose a width-1, all-finite sketch and the set must hold
/// at least 2 rows. Uses the sample variance `(Σa² − (Σa)²/n)/(n−1)` so
/// the value is on the same scale as the pilot's `std_dev_sample`.
/// Returns `None` — fall back to the pilot — when any sketch is missing
/// or inapplicable, or when cancellation drives the variance negative
/// (the `min == max` constant-data case is detected exactly first).
fn sketch_derived_sigma(data: &BlockSet, config: &IslaConfig) -> Option<f64> {
    if !config.sketch_sigma {
        return None;
    }
    let sketches = data.ready_sketches();
    if sketches.is_empty() || !sketches.is_complete() {
        return None;
    }
    let mut n = 0u64;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for sketch in sketches.iter().flatten() {
        if sketch.width() != 1 {
            return None;
        }
        let m = sketch.column(0)?;
        if m.non_finite > 0 {
            return None;
        }
        n += sketch.rows;
        sum += m.sum;
        sum_sq += m.sum_sq;
        min = min.min(m.min);
        max = max.max(m.max);
    }
    if n < 2 {
        return None;
    }
    if min == max {
        return Some(0.0);
    }
    let nf = n as f64;
    let var = (sum_sq - sum * sum / nf) / (nf - 1.0);
    if var > 0.0 {
        Some(var.sqrt())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_values;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(e: f64) -> IslaConfig {
        IslaConfig::builder().precision(e).build().unwrap()
    }

    #[test]
    fn estimates_sigma_and_sketch_on_normal_data() {
        let data = BlockSet::from_values(normal_values(100.0, 20.0, 400_000, 1), 10);
        let mut rng = StdRng::seed_from_u64(2);
        let pre = pre_estimate(&data, &config(0.5), &mut rng).unwrap();
        assert!((pre.sigma - 20.0).abs() < 2.0, "σ̂ = {}", pre.sigma);
        // sketch0 within the relaxed interval of the truth (w.h.p.).
        assert!(
            (pre.sketch0 - 100.0).abs() < 2.0 * 0.5 * 3.0,
            "sketch0 {}",
            pre.sketch0
        );
        assert_eq!(pre.sigma_pilot_used, 1000);
        // m = (1.96·σ̂/0.5)², r = m/M.
        let want_m = isla_stats::required_sample_size(pre.sigma, 0.5, 0.95);
        assert_eq!(pre.required_samples, want_m);
        assert!((pre.rate - want_m as f64 / 400_000.0).abs() < 1e-12);
        assert_eq!(pre.sketch_interval.half_width, 1.0); // tₑ·e = 2·0.5
        assert_eq!(pre.sketch_interval.center, pre.sketch0);
    }

    #[test]
    fn known_sigma_skips_first_pilot() {
        let data = BlockSet::from_values(normal_values(100.0, 20.0, 50_000, 3), 5);
        let cfg = IslaConfig::builder()
            .precision(0.5)
            .known_sigma(Some(20.0))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let pre = pre_estimate(&data, &cfg, &mut rng).unwrap();
        assert_eq!(pre.sigma, 20.0);
        assert_eq!(pre.sigma_pilot_used, 0);
    }

    #[test]
    fn sketch_sigma_skips_the_pilot_with_exact_moments() {
        let values = normal_values(100.0, 20.0, 40_000, 11);
        let data = BlockSet::from_values(values.clone(), 8);
        let cfg = IslaConfig::builder()
            .precision(0.5)
            .sketch_sigma(true)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let pre = pre_estimate(&data, &cfg, &mut rng).unwrap();
        assert_eq!(pre.sigma_pilot_used, 0, "sketches replace the σ pilot");
        let moments: WelfordMoments = values.into_iter().collect();
        let exact = moments.std_dev_sample().unwrap();
        assert!(
            (pre.sigma - exact).abs() <= 1e-9 * exact,
            "sketch σ {} vs exact {exact}",
            pre.sigma
        );
        assert_eq!(
            pre.required_samples,
            isla_stats::required_sample_size(pre.sigma, 0.5, 0.95)
        );
    }

    #[test]
    fn sketch_sigma_detects_constant_data_exactly() {
        let data = BlockSet::from_values(vec![7.5; 1000], 4);
        let cfg = IslaConfig::builder()
            .precision(0.1)
            .sketch_sigma(true)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let pre = pre_estimate(&data, &cfg, &mut rng).unwrap();
        assert_eq!(pre.sigma, 0.0, "min == max proves σ = 0 from metadata");
        assert_eq!(pre.sigma_pilot_used, 0);
        assert_eq!(pre.sketch0, 7.5);
        assert_eq!(pre.required_samples, 1);
    }

    #[test]
    fn sketch_sigma_falls_back_to_the_pilot_without_sketches() {
        let data = isla_storage::scalar_fallback_set(&BlockSet::from_values(
            normal_values(100.0, 20.0, 40_000, 14),
            8,
        ));
        let cfg = IslaConfig::builder()
            .precision(0.5)
            .sketch_sigma(true)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(15);
        let pre = pre_estimate(&data, &cfg, &mut rng).unwrap();
        assert_eq!(
            pre.sigma_pilot_used, 1000,
            "sketch-less blocks fall back to the sampling pilot"
        );
        assert!((pre.sigma - 20.0).abs() < 2.0, "σ̂ = {}", pre.sigma);
    }

    #[test]
    fn rate_saturates_on_tiny_data() {
        let data = BlockSet::from_values(normal_values(100.0, 20.0, 50, 2), 2);
        let mut rng = StdRng::seed_from_u64(5);
        let pre = pre_estimate(&data, &config(0.5), &mut rng).unwrap();
        assert_eq!(pre.rate, 1.0, "required m exceeds M → full scan rate");
        assert_eq!(pre.sigma_pilot_used, 50);
    }

    #[test]
    fn degenerate_constant_data_short_circuits() {
        let data = BlockSet::from_values(vec![7.5; 1000], 4);
        let mut rng = StdRng::seed_from_u64(6);
        let pre = pre_estimate(&data, &config(0.1), &mut rng).unwrap();
        assert_eq!(pre.sigma, 0.0);
        assert_eq!(pre.sketch0, 7.5);
        assert_eq!(pre.required_samples, 1);
        assert_eq!(pre.sketch_interval.half_width, 0.0);
    }

    #[test]
    fn empty_data_is_rejected() {
        let data = BlockSet::single(isla_storage::MemBlock::new(vec![]));
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            pre_estimate(&data, &config(0.1), &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
    }

    #[test]
    fn single_row_cannot_estimate_sigma() {
        let data = BlockSet::from_values(vec![3.0], 1);
        let mut rng = StdRng::seed_from_u64(8);
        assert!(matches!(
            pre_estimate(&data, &config(0.1), &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
        // …unless σ is known.
        let cfg = IslaConfig::builder()
            .precision(0.1)
            .known_sigma(Some(1.0))
            .build()
            .unwrap();
        let pre = pre_estimate(&data, &cfg, &mut rng).unwrap();
        assert_eq!(pre.rate, 1.0);
    }

    #[test]
    fn best_effort_pilots_recover_transients_bit_for_bit() {
        use isla_storage::FaultPlan;
        let data = BlockSet::from_values(normal_values(100.0, 20.0, 80_000, 17), 8);
        let faulty = FaultPlan::new(31).transient(0.6, 2).arm(&data);
        let policy = RecoveryPolicy::best_effort(crate::engine::RetryPolicy::attempts(3));
        let mut rng = StdRng::seed_from_u64(18);
        let clean = pre_estimate(&data, &config(0.5), &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(18);
        let recovered = pre_estimate_with(&faulty, &config(0.5), &policy, &mut rng).unwrap();
        assert_eq!(clean, recovered, "in-place retries are stream-neutral");
    }

    #[test]
    fn best_effort_pilots_survive_lost_blocks_where_strict_fails() {
        use isla_storage::{BlockFault, FaultPlan};
        let data = BlockSet::from_values(normal_values(100.0, 20.0, 80_000, 19), 8);
        // Pick the first seed whose plan loses some but not all blocks.
        let plan = (0..64)
            .map(|s| FaultPlan::new(s).lose(0.4))
            .find(|p| {
                let lost = (0..8)
                    .filter(|&i| p.fault_for(i) == BlockFault::Lost)
                    .count();
                (1..=6).contains(&lost)
            })
            .expect("some seed under 64 must lose 1..=6 of 8 blocks");
        let faulty = plan.arm(&data);
        let mut rng = StdRng::seed_from_u64(20);
        assert!(
            matches!(
                pre_estimate(&faulty, &config(0.5), &mut rng),
                Err(IslaError::Storage(_))
            ),
            "strict pilots propagate the block loss"
        );
        let policy = RecoveryPolicy::best_effort(crate::engine::RetryPolicy::attempts(2));
        let mut rng = StdRng::seed_from_u64(20);
        let pre = pre_estimate_with(&faulty, &config(0.5), &policy, &mut rng).unwrap();
        assert!(
            (pre.sigma - 20.0).abs() < 3.0,
            "σ̂ from survivors: {}",
            pre.sigma
        );
        assert!((pre.sketch0 - 100.0).abs() < 3.0, "sketch0 {}", pre.sketch0);
    }

    #[test]
    fn tighter_precision_needs_more_samples() {
        let data = BlockSet::from_values(normal_values(100.0, 20.0, 200_000, 9), 10);
        let mut rng = StdRng::seed_from_u64(10);
        let loose = pre_estimate(&data, &config(0.5), &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let tight = pre_estimate(&data, &config(0.1), &mut rng).unwrap();
        assert!(tight.required_samples > loose.required_samples * 20);
        assert!(tight.sketch_pilot_used > loose.sketch_pilot_used);
    }
}
