//! Deviation evaluation and modulation-case selection (paper Section V-B/C).
//!
//! Two indicators drive the modulation strategy:
//!
//! * the sign of `D₀ = c − sketch0` (which estimator starts higher);
//! * the relation of `|S|` and `|L|`: by the symmetry of the S/L windows,
//!   `|S| < |L|` indicates `sketch0 < µ` and `|S| > |L|` indicates
//!   `sketch0 > µ` (the boundary windows slide with `sketch0`, tilting
//!   the region masses — Fig. 5 of the paper).
//!
//! Crossing the two indicators yields the paper's five cases. Note the
//! paper's prose in §V-B(1) states the `|S|`/`|L|` → direction mapping
//! backwards; the mapping used here is the one its own Cases 1–4 and
//! Fig. 5 require (see `DESIGN.md`, "paper errata").

use crate::config::IslaConfig;

/// The five modulation cases of paper Section V-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModulationCase {
    /// Case 1 — `D₀<0, |S|<|L|`: `c < sketch0 < µ`. Unbalanced sampling;
    /// both estimators increase, the l-estimator faster.
    ChaseUp,
    /// Case 2 — `D₀<0, |S|>|L|`: `c, µ < sketch0`. Sketch decreases, the
    /// l-estimator is nudged up; they converge between the two.
    ConvergeDown,
    /// Case 3 — `D₀>0, |S|<|L|`: `c, µ > sketch0`. Mirror image of
    /// Case 2: sketch increases toward the l-estimator.
    ConvergeUp,
    /// Case 4 — `D₀>0, |S|>|L|`: `c > sketch0 > µ`. Unbalanced sampling;
    /// both decrease, the l-estimator faster (`α` goes negative).
    ChaseDown,
    /// Case 5 — `|S| ≈ |L|`: `sketch0` is already close to `µ`; return it
    /// without iterating.
    Balanced,
}

impl ModulationCase {
    /// The case number used in the paper (1–5).
    pub fn paper_number(self) -> u8 {
        match self {
            ModulationCase::ChaseUp => 1,
            ModulationCase::ConvergeDown => 2,
            ModulationCase::ConvergeUp => 3,
            ModulationCase::ChaseDown => 4,
            ModulationCase::Balanced => 5,
        }
    }

    /// Whether the case moves both estimators in the same direction
    /// (Fig. 1's "estimators on the same side" geometry).
    pub fn is_chase(self) -> bool {
        matches!(self, ModulationCase::ChaseUp | ModulationCase::ChaseDown)
    }
}

/// The evaluated deviation indicators for one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationAssessment {
    /// `dev = |S|/|L|` (infinite when `|L| = 0`).
    pub dev: f64,
    /// Initial objective value `D₀ = c − sketch0`.
    pub d0: f64,
    /// The selected modulation case.
    pub case: ModulationCase,
}

/// Selects the modulation case from the region counts and `D₀`.
///
/// `u`/`v` are the S/L sample counts; callers guarantee both are positive
/// (empty regions are handled by the fallback path before assessment).
pub fn assess(u: u64, v: u64, d0: f64, config: &IslaConfig) -> DeviationAssessment {
    debug_assert!(u > 0 && v > 0, "assessment requires non-empty regions");
    let dev = u as f64 / v as f64;
    let (lo, hi) = config.balance_band;
    let case = if dev > lo && dev < hi {
        ModulationCase::Balanced
    } else if d0 == 0.0 {
        // The estimators already agree; nothing to modulate.
        ModulationCase::Balanced
    } else {
        match (d0 < 0.0, u < v) {
            (true, true) => ModulationCase::ChaseUp,
            (true, false) => ModulationCase::ConvergeDown,
            (false, true) => ModulationCase::ConvergeUp,
            (false, false) => ModulationCase::ChaseDown,
        }
    };
    DeviationAssessment { dev, d0, case }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IslaConfig {
        IslaConfig::default()
    }

    #[test]
    fn case_table_matches_paper() {
        // (u, v, d0) → expected case, straight from §V-C.
        let cases = [
            (90u64, 110u64, -1.0, ModulationCase::ChaseUp), // 1
            (110, 90, -1.0, ModulationCase::ConvergeDown),  // 2
            (90, 110, 1.0, ModulationCase::ConvergeUp),     // 3
            (110, 90, 1.0, ModulationCase::ChaseDown),      // 4
            (100, 100, 1.0, ModulationCase::Balanced),      // 5
        ];
        for (u, v, d0, want) in cases {
            let got = assess(u, v, d0, &cfg());
            assert_eq!(got.case, want, "u={u} v={v} d0={d0}");
        }
    }

    #[test]
    fn paper_numbers_and_chase_flag() {
        assert_eq!(ModulationCase::ChaseUp.paper_number(), 1);
        assert_eq!(ModulationCase::ConvergeDown.paper_number(), 2);
        assert_eq!(ModulationCase::ConvergeUp.paper_number(), 3);
        assert_eq!(ModulationCase::ChaseDown.paper_number(), 4);
        assert_eq!(ModulationCase::Balanced.paper_number(), 5);
        assert!(ModulationCase::ChaseUp.is_chase());
        assert!(ModulationCase::ChaseDown.is_chase());
        assert!(!ModulationCase::ConvergeUp.is_chase());
        assert!(!ModulationCase::Balanced.is_chase());
    }

    #[test]
    fn balance_band_is_open() {
        // dev exactly on the band edge is NOT balanced.
        let a = assess(99, 100, 1.0, &cfg());
        assert_eq!(a.case, ModulationCase::ConvergeUp, "dev=0.99 on edge");
        let b = assess(995, 1000, 1.0, &cfg());
        assert_eq!(b.case, ModulationCase::Balanced, "dev=0.995 inside");
    }

    #[test]
    fn zero_d0_short_circuits_to_balanced() {
        let a = assess(50, 100, 0.0, &cfg());
        assert_eq!(a.case, ModulationCase::Balanced);
        assert_eq!(a.d0, 0.0);
        assert_eq!(a.dev, 0.5);
    }

    #[test]
    fn dev_is_reported() {
        let a = assess(120, 100, -0.5, &cfg());
        assert!((a.dev - 1.2).abs() < 1e-12);
        assert_eq!(a.d0, -0.5);
    }
}
