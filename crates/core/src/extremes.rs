//! Extreme-value aggregation — the paper's in-progress extension
//! (Section VII-D).
//!
//! The paper sketches MAX/MIN under the same framework with two changes:
//!
//! 1. **recorded information**: "only the extreme value is recorded in
//!    each block" — a single running max/min per block instead of the
//!    S/L power sums;
//! 2. **sampling rate**: "a leverage-based sampling rate which considers
//!    the local variance *and* the general conditions of the blocks" —
//!    high-variance blocks need more samples to reach their tails, and
//!    for MAX "the MAX value is more likely to be in the blocks with
//!    generally higher values".
//!
//! We instantiate the sketch concretely: each block's leverage multiplies
//! a unit-free variance term `1 + σᵢ²/σ_pooled²` by a general-condition
//! boost `1 + max(0, (meanᵢ − pooled_mean)/pooled_σ)` (mirrored for
//! MIN) — both factors are dimensionless so neither silently dominates —
//! and block rates follow §VII-C's `rateᵢ = r·M·blevᵢ/|Bᵢ|`.
//!
//! A sample maximum *underestimates* the true maximum (it converges as
//! the sampling rate approaches a full scan); the result therefore
//! reports the sampled extreme as a one-sided bound, which is the
//! well-defined guarantee sampling can give without distributional
//! extrapolation.

use rand::RngCore;

use isla_stats::WelfordMoments;
use isla_storage::{sample_from_block, BlockSet};

use crate::config::IslaConfig;
use crate::error::IslaError;

/// Which extreme to aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtremeKind {
    /// `MAX(column)`.
    Max,
    /// `MIN(column)`.
    Min,
}

impl ExtremeKind {
    /// Identity element for the running extreme.
    fn identity(self) -> f64 {
        match self {
            ExtremeKind::Max => f64::NEG_INFINITY,
            ExtremeKind::Min => f64::INFINITY,
        }
    }

    /// Folds one value into the running extreme.
    #[inline]
    fn fold(self, acc: f64, v: f64) -> f64 {
        match self {
            ExtremeKind::Max => acc.max(v),
            ExtremeKind::Min => acc.min(v),
        }
    }
}

/// Per-block diagnostics of an extreme-value aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtremeBlockOutcome {
    /// Block index.
    pub block_id: usize,
    /// Block leverage `blevᵢ` (sums to 1 across blocks).
    pub blev: f64,
    /// Local sampling rate.
    pub rate: f64,
    /// Samples drawn.
    pub samples_drawn: u64,
    /// The block's sampled extreme (identity when no samples landed).
    pub extreme: f64,
}

/// The result of an extreme-value aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtremeResult {
    /// The sampled extreme — a one-sided bound on the true extreme
    /// (lower bound for MAX, upper bound for MIN).
    pub estimate: f64,
    /// Which extreme was computed.
    pub kind: ExtremeKind,
    /// Per-block outcomes.
    pub blocks: Vec<ExtremeBlockOutcome>,
    /// Calculation-phase samples drawn.
    pub total_samples: u64,
}

/// Leverage-guided approximate MAX/MIN (paper §VII-D).
#[derive(Debug, Clone)]
pub struct ExtremeAggregator {
    config: IslaConfig,
}

impl ExtremeAggregator {
    /// Creates the aggregator; the configuration supplies the pilot
    /// sizes and the precision/confidence that scale the overall rate.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] for out-of-domain parameters.
    pub fn new(config: IslaConfig) -> Result<Self, IslaError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Runs the aggregation.
    ///
    /// # Errors
    ///
    /// Storage failures; [`IslaError::InsufficientData`] on empty data.
    pub fn aggregate(
        &self,
        data: &BlockSet,
        kind: ExtremeKind,
        rng: &mut dyn RngCore,
    ) -> Result<ExtremeResult, IslaError> {
        let cfg = &self.config;
        let data_size = data.total_len();
        if data_size == 0 {
            return Err(IslaError::InsufficientData(
                "block set holds no rows".to_string(),
            ));
        }
        let b = data.block_count();

        // Per-block pilots: local σᵢ and meanᵢ ("the general conditions of
        // the blocks can be described using the average or median").
        let mut locals = Vec::with_capacity(b);
        let mut pooled = WelfordMoments::new();
        for block in data.iter() {
            if block.is_empty() {
                locals.push((0.0, 0.0));
                continue;
            }
            let pilot = cfg.sigma_pilot_size.min(block.len()).max(2);
            let mut w = WelfordMoments::new();
            sample_from_block(block.as_ref(), pilot, rng, &mut |v| {
                w.update(v);
                pooled.update(v);
            })?;
            locals.push((
                w.std_dev_sample().unwrap_or(0.0),
                w.mean().ok_or_else(|| {
                    IslaError::InsufficientData("extreme pilot drew no samples".to_string())
                })?,
            ));
        }
        let pooled_mean = pooled
            .mean()
            .ok_or_else(|| IslaError::InsufficientData("pooled pilot is empty".to_string()))?;
        let pooled_sd = pooled
            .std_dev_sample()
            .unwrap_or(0.0)
            .max(f64::MIN_POSITIVE);

        // Overall rate from Eq. 1 with the pooled σ.
        let overall_rate = if pooled_sd <= f64::MIN_POSITIVE {
            // Constant data: one sample per block settles the extreme.
            1.0 / data_size as f64
        } else {
            isla_stats::sampling_rate(pooled_sd, cfg.precision, cfg.confidence, data_size)
        };

        // Block leverages: variance term × general-condition boost, both
        // unit-free.
        let scores: Vec<f64> = locals
            .iter()
            .map(|&(sigma, mean)| {
                let direction = match kind {
                    ExtremeKind::Max => (mean - pooled_mean) / pooled_sd,
                    ExtremeKind::Min => (pooled_mean - mean) / pooled_sd,
                };
                let variance_term = 1.0 + (sigma * sigma) / (pooled_sd * pooled_sd);
                variance_term * (1.0 + direction.max(0.0))
            })
            .collect();
        let score_sum: f64 = scores.iter().sum();

        let mut blocks = Vec::with_capacity(b);
        let mut total_samples = 0u64;
        let mut estimate = kind.identity();
        for (block_id, block) in data.iter().enumerate() {
            let blev = scores[block_id] / score_sum;
            let rows = block.len();
            if rows == 0 {
                blocks.push(ExtremeBlockOutcome {
                    block_id,
                    blev,
                    rate: 0.0,
                    samples_drawn: 0,
                    extreme: kind.identity(),
                });
                continue;
            }
            let rate = (overall_rate * data_size as f64 * blev / rows as f64).min(1.0);
            let take = ((rate * rows as f64).round() as u64).max(1);
            // "only the extreme value is recorded in each block".
            let mut extreme = kind.identity();
            let mut block_rng = crate::engine::seed::seeded_rng(rng.next_u64());
            sample_from_block(block.as_ref(), take, &mut block_rng, &mut |v| {
                extreme = kind.fold(extreme, v);
            })?;
            total_samples += take;
            estimate = kind.fold(estimate, extreme);
            blocks.push(ExtremeBlockOutcome {
                block_id,
                blev,
                rate,
                samples_drawn: take,
                extreme,
            });
        }

        Ok(ExtremeResult {
            estimate,
            kind,
            blocks,
            total_samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::normal_values;
    use isla_storage::{BlockSet, MemBlock};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn aggregator(e: f64) -> ExtremeAggregator {
        ExtremeAggregator::new(IslaConfig::builder().precision(e).build().unwrap()).unwrap()
    }

    fn two_tier_data() -> (BlockSet, f64, f64) {
        // Block 0: low values; block 1: high values holding the max.
        let low = normal_values(50.0, 5.0, 100_000, 1);
        let high = normal_values(150.0, 10.0, 100_000, 2);
        let true_max = low
            .iter()
            .chain(&high)
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let true_min = low
            .iter()
            .chain(&high)
            .fold(f64::INFINITY, |a, &b| a.min(b));
        let set = BlockSet::new(vec![
            Arc::new(MemBlock::new(low)) as Arc<dyn isla_storage::DataBlock>,
            Arc::new(MemBlock::new(high)),
        ]);
        (set, true_max, true_min)
    }

    #[test]
    fn max_is_a_tight_lower_bound() {
        let (data, true_max, _) = two_tier_data();
        let mut rng = StdRng::seed_from_u64(3);
        let r = aggregator(0.5)
            .aggregate(&data, ExtremeKind::Max, &mut rng)
            .unwrap();
        assert!(
            r.estimate <= true_max,
            "sample max cannot exceed the true max"
        );
        // With tens of thousands of samples in the high block the sample
        // max lands within a few σ-tail units of the truth.
        assert!(
            true_max - r.estimate < 8.0,
            "estimate {} too far below true max {true_max}",
            r.estimate
        );
    }

    #[test]
    fn min_mirrors_max() {
        let (data, _, true_min) = two_tier_data();
        let mut rng = StdRng::seed_from_u64(4);
        let r = aggregator(0.5)
            .aggregate(&data, ExtremeKind::Min, &mut rng)
            .unwrap();
        assert!(r.estimate >= true_min);
        assert!(r.estimate - true_min < 5.0, "estimate {}", r.estimate);
    }

    #[test]
    fn general_condition_boost_favors_the_right_blocks() {
        let (data, _, _) = two_tier_data();
        let mut rng = StdRng::seed_from_u64(5);
        let max_run = aggregator(0.5)
            .aggregate(&data, ExtremeKind::Max, &mut rng)
            .unwrap();
        // MAX boosts the high-mean block (index 1).
        assert!(
            max_run.blocks[1].blev > max_run.blocks[0].blev,
            "MAX must lever the high block: {:?}",
            max_run.blocks.iter().map(|b| b.blev).collect::<Vec<_>>()
        );
        let mut rng = StdRng::seed_from_u64(5);
        let min_run = aggregator(0.5)
            .aggregate(&data, ExtremeKind::Min, &mut rng)
            .unwrap();
        assert!(
            min_run.blocks[0].blev > min_run.blocks[1].blev,
            "MIN must lever the low block"
        );
        // Leverages normalize.
        let total: f64 = max_run.blocks.iter().map(|b| b.blev).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn higher_rates_tighten_the_bound() {
        let (data, true_max, _) = two_tier_data();
        let gap = |e: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            true_max
                - aggregator(e)
                    .aggregate(&data, ExtremeKind::Max, &mut rng)
                    .unwrap()
                    .estimate
        };
        let coarse: f64 = (0..5).map(|s| gap(5.0, s)).sum();
        let fine: f64 = (0..5).map(|s| gap(0.2, s)).sum();
        assert!(
            fine < coarse,
            "tighter precision should shrink the max gap: fine {fine} vs coarse {coarse}"
        );
    }

    #[test]
    fn constant_data_is_exact() {
        let data = BlockSet::from_values(vec![7.0; 10_000], 4);
        let mut rng = StdRng::seed_from_u64(6);
        let r = aggregator(0.5)
            .aggregate(&data, ExtremeKind::Max, &mut rng)
            .unwrap();
        assert_eq!(r.estimate, 7.0);
    }

    #[test]
    fn empty_data_rejected() {
        let data = BlockSet::single(MemBlock::new(vec![]));
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            aggregator(0.5).aggregate(&data, ExtremeKind::Max, &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
    }
}
