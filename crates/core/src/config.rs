//! ISLA configuration: every tunable of the paper with its §VIII default.

use crate::error::IslaError;

/// How the modulation steps treat Cases 2 and 3 (see `DESIGN.md` and
/// [`crate::modulation`]).
///
/// The paper's Fig. 1 prescribes that when the accurate value lies between
/// the two estimators they are moved *toward each other*; the prose of
/// Case 3 (Section V-C) instead says both estimators increase. The two
/// readings disagree (the prose version extrapolates past the l-estimator
/// and amplifies its sampling noise by `λ/(1−λ)`), so both are available
/// and the figure-consistent one is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModulationStyle {
    /// Cases 2/3 move the estimators toward each other (consistent with
    /// Fig. 1 and Theorem 1). Default.
    #[default]
    FigureConsistent,
    /// Cases 2/3 move both estimators in the same direction, exactly as
    /// the prose of Section V-C reads.
    PaperLiteral,
}

/// How negative data is handled.
///
/// The leverage scores `hᵢ = aᵢ²/Σa²` are only monotone in the value for
/// positive data; the paper's footnote 1 translates the data "along the x
/// axis by the distance of d to make all the data positive" and shifts the
/// answer back. Only S/L-region values enter the computation, so a shift
/// is required exactly when the lower S boundary is non-positive.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ShiftPolicy {
    /// Shift automatically when the S region reaches non-positive values.
    #[default]
    Auto,
    /// Never shift (caller guarantees positive S/L regions).
    None,
    /// Always shift by the given amount.
    Fixed(f64),
}

/// Full ISLA configuration. Build with [`IslaConfig::builder`]; defaults
/// are the paper's Section VIII experiment parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct IslaConfig {
    /// Desired precision `e` (confidence-interval half width). Default 0.1.
    pub precision: f64,
    /// Confidence `β ∈ (0,1)`. Default 0.95.
    pub confidence: f64,
    /// Inner data-boundary parameter `p1`. Default 0.5.
    pub p1: f64,
    /// Outer data-boundary parameter `p2`. Default 2.0.
    pub p2: f64,
    /// Step-length factor `λ ∈ (0,1)`. Default 0.8.
    pub lambda: f64,
    /// Convergence speed `η ∈ (0,1)`: `D` shrinks to `η·D` per iteration.
    /// Default 0.5.
    pub eta: f64,
    /// Iteration threshold `thr`: the loop halts when `|D| ≤ thr`.
    /// Default `precision / 1000` (set automatically when not overridden).
    pub threshold: f64,
    /// Relaxed-precision factor `tₑ ≥ 1` for the sketch estimator
    /// (`sketch0` is computed to precision `tₑ·e`). Default 2.0.
    pub relaxation: f64,
    /// Size of the pilot sample used to estimate `σ`. Default 1000.
    pub sigma_pilot_size: u64,
    /// `dev = |S|/|L|` band treated as balanced (Case 5): `(lo, hi)`
    /// around 1. Default (0.99, 1.01).
    pub balance_band: (f64, f64),
    /// `dev` band (symmetric, expressed by its upper bound `hi > 1`)
    /// within which `q = 1`. Default 1.03 (i.e. dev ∈ (1/1.03, 1.03)).
    pub q_neutral_hi: f64,
    /// `dev` band upper bound within which the moderate `q′` applies.
    /// Default 1.06 (dev ∈ (1/1.06, 1.06) \ neutral band).
    pub q_moderate_hi: f64,
    /// Moderate leverage-allocation parameter `q′`. Default 5.
    pub q_moderate: f64,
    /// Strong leverage-allocation parameter `q′` for `dev` beyond the
    /// moderate band. Default 10.
    pub q_strong: f64,
    /// Hard cap on modulation iterations (safety net over the closed-form
    /// bound `⌈log(|D₀|/thr)/log(1/η)⌉`). Default 64.
    pub max_iterations: u32,
    /// Case 2/3 interpretation. Default [`ModulationStyle::FigureConsistent`].
    pub modulation_style: ModulationStyle,
    /// Clamp per-block answers to the sketch estimator's relaxed
    /// confidence interval (`sketch0 ± tₑ·e`), the modulation boundary the
    /// paper proposes in Section VII-B. Default true.
    pub clamp_to_sketch_interval: bool,
    /// Negative-data handling. Default [`ShiftPolicy::Auto`].
    pub shift_policy: ShiftPolicy,
    /// Known standard deviation: when set, the σ-estimation pilot is
    /// skipped. Default `None`.
    pub known_sigma: Option<f64>,
    /// Derive σ from cached per-block moment sketches when the data
    /// exposes them (single-column, all-finite, no filtering applied):
    /// the exact population variance replaces the σ pilot sample
    /// entirely. Falls back to the pilot whenever the sketches are
    /// incomplete or inapplicable. Default false.
    pub sketch_sigma: bool,
    /// Record per-iteration traces in block outcomes (diagnostics).
    /// Default false.
    pub record_trace: bool,
}

impl Default for IslaConfig {
    fn default() -> Self {
        Self {
            precision: 0.1,
            confidence: 0.95,
            p1: 0.5,
            p2: 2.0,
            lambda: 0.8,
            eta: 0.5,
            threshold: 0.1 / 1000.0,
            relaxation: 2.0,
            sigma_pilot_size: 1000,
            balance_band: (0.99, 1.01),
            q_neutral_hi: 1.03,
            q_moderate_hi: 1.06,
            q_moderate: 5.0,
            q_strong: 10.0,
            max_iterations: 64,
            modulation_style: ModulationStyle::FigureConsistent,
            clamp_to_sketch_interval: true,
            shift_policy: ShiftPolicy::Auto,
            known_sigma: None,
            sketch_sigma: false,
            record_trace: false,
        }
    }
}

impl IslaConfig {
    /// Starts a builder with the paper's defaults.
    pub fn builder() -> IslaConfigBuilder {
        IslaConfigBuilder::default()
    }

    /// A stable digest of every parameter, used to key caches (e.g. the
    /// engine's pre-estimation cache): two configurations fingerprint
    /// equal exactly when every field is bit-identical.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for v in [
            self.precision,
            self.confidence,
            self.p1,
            self.p2,
            self.lambda,
            self.eta,
            self.threshold,
            self.relaxation,
            self.balance_band.0,
            self.balance_band.1,
            self.q_neutral_hi,
            self.q_moderate_hi,
            self.q_moderate,
            self.q_strong,
        ] {
            v.to_bits().hash(&mut h);
        }
        self.sigma_pilot_size.hash(&mut h);
        self.max_iterations.hash(&mut h);
        match self.modulation_style {
            ModulationStyle::FigureConsistent => 0u8.hash(&mut h),
            ModulationStyle::PaperLiteral => 1u8.hash(&mut h),
        }
        self.clamp_to_sketch_interval.hash(&mut h);
        match self.shift_policy {
            ShiftPolicy::Auto => 0u8.hash(&mut h),
            ShiftPolicy::None => 1u8.hash(&mut h),
            ShiftPolicy::Fixed(d) => {
                2u8.hash(&mut h);
                d.to_bits().hash(&mut h);
            }
        }
        self.known_sigma.map(f64::to_bits).hash(&mut h);
        self.sketch_sigma.hash(&mut h);
        self.record_trace.hash(&mut h);
        h.finish()
    }

    /// Validates every parameter's domain.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), IslaError> {
        let fail = |msg: String| Err(IslaError::InvalidConfig(msg));
        if !(self.precision > 0.0 && self.precision.is_finite()) {
            return fail(format!(
                "precision must be positive, got {}",
                self.precision
            ));
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return fail(format!(
                "confidence must be in (0,1), got {}",
                self.confidence
            ));
        }
        if !(self.p1 > 0.0 && self.p1 < self.p2 && self.p2.is_finite()) {
            return fail(format!(
                "boundaries must satisfy 0 < p1 < p2, got p1={}, p2={}",
                self.p1, self.p2
            ));
        }
        if !(self.lambda > 0.0 && self.lambda < 1.0) {
            return fail(format!("lambda must be in (0,1), got {}", self.lambda));
        }
        if !(self.eta > 0.0 && self.eta < 1.0) {
            return fail(format!("eta must be in (0,1), got {}", self.eta));
        }
        if !(self.threshold > 0.0 && self.threshold.is_finite()) {
            return fail(format!(
                "threshold must be positive, got {}",
                self.threshold
            ));
        }
        if !(self.relaxation >= 1.0 && self.relaxation.is_finite()) {
            return fail(format!(
                "relaxation factor must be >= 1, got {}",
                self.relaxation
            ));
        }
        if self.sigma_pilot_size < 2 {
            return fail(format!(
                "sigma pilot needs at least 2 samples, got {}",
                self.sigma_pilot_size
            ));
        }
        let (lo, hi) = self.balance_band;
        if !(lo > 0.0 && lo < 1.0 && hi > 1.0 && hi.is_finite()) {
            return fail(format!("balance band must straddle 1, got ({lo}, {hi})"));
        }
        if !(self.q_neutral_hi > hi && self.q_moderate_hi > self.q_neutral_hi) {
            return fail(format!(
                "q bands must satisfy balance_hi < q_neutral_hi < q_moderate_hi, got {} < {} < {}",
                hi, self.q_neutral_hi, self.q_moderate_hi
            ));
        }
        if !(self.q_moderate >= 1.0 && self.q_strong >= self.q_moderate) {
            return fail(format!(
                "q' tiers must satisfy 1 <= moderate <= strong, got {} and {}",
                self.q_moderate, self.q_strong
            ));
        }
        if self.max_iterations == 0 {
            return fail("max_iterations must be positive".to_string());
        }
        if let ShiftPolicy::Fixed(d) = self.shift_policy {
            if !d.is_finite() {
                return fail(format!("fixed shift must be finite, got {d}"));
            }
        }
        if let Some(s) = self.known_sigma {
            if !(s >= 0.0 && s.is_finite()) {
                return fail(format!("known sigma must be non-negative, got {s}"));
            }
        }
        Ok(())
    }
}

/// Builder for [`IslaConfig`].
#[derive(Debug, Clone, Default)]
pub struct IslaConfigBuilder {
    config: IslaConfig,
    threshold_overridden: bool,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, value: $ty) -> Self {
            self.config.$name = value;
            self
        }
    };
}

impl IslaConfigBuilder {
    /// Sets the desired precision `e` (also rescales the default iteration
    /// threshold to `e/1000` unless explicitly overridden).
    pub fn precision(mut self, e: f64) -> Self {
        self.config.precision = e;
        if !self.threshold_overridden {
            self.config.threshold = e / 1000.0;
        }
        self
    }

    /// Sets the iteration threshold `thr` explicitly.
    pub fn threshold(mut self, thr: f64) -> Self {
        self.config.threshold = thr;
        self.threshold_overridden = true;
        self
    }

    setter!(
        /// Sets the confidence `β`.
        confidence: f64
    );
    setter!(
        /// Sets the inner boundary parameter `p1`.
        p1: f64
    );
    setter!(
        /// Sets the outer boundary parameter `p2`.
        p2: f64
    );
    setter!(
        /// Sets the step-length factor `λ`.
        lambda: f64
    );
    setter!(
        /// Sets the convergence speed `η`.
        eta: f64
    );
    setter!(
        /// Sets the sketch relaxation factor `tₑ`.
        relaxation: f64
    );
    setter!(
        /// Sets the σ-pilot sample size.
        sigma_pilot_size: u64
    );
    setter!(
        /// Sets the balanced `dev` band (Case 5).
        balance_band: (f64, f64)
    );
    setter!(
        /// Sets the `q = 1` band upper bound.
        q_neutral_hi: f64
    );
    setter!(
        /// Sets the moderate-`q′` band upper bound.
        q_moderate_hi: f64
    );
    setter!(
        /// Sets the moderate `q′`.
        q_moderate: f64
    );
    setter!(
        /// Sets the strong `q′`.
        q_strong: f64
    );
    setter!(
        /// Sets the iteration safety cap.
        max_iterations: u32
    );
    setter!(
        /// Sets the Case 2/3 interpretation.
        modulation_style: ModulationStyle
    );
    setter!(
        /// Enables or disables clamping block answers to the sketch
        /// estimator's relaxed confidence interval (paper §VII-B).
        clamp_to_sketch_interval: bool
    );
    setter!(
        /// Sets the negative-data shift policy.
        shift_policy: ShiftPolicy
    );
    setter!(
        /// Supplies a known σ, skipping the σ-estimation pilot.
        known_sigma: Option<f64>
    );
    setter!(
        /// Enables sketch-derived σ (skips the pilot when per-block
        /// moment sketches cover the data).
        sketch_sigma: bool
    );
    setter!(
        /// Enables per-iteration trace recording.
        record_trace: bool
    );

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] naming the offending parameter.
    pub fn build(self) -> Result<IslaConfig, IslaError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_viii() {
        let c = IslaConfig::default();
        assert_eq!(c.precision, 0.1);
        assert_eq!(c.confidence, 0.95);
        assert_eq!(c.p1, 0.5);
        assert_eq!(c.p2, 2.0);
        assert_eq!(c.lambda, 0.8);
        assert_eq!(c.eta, 0.5);
        assert_eq!(c.q_moderate, 5.0);
        assert_eq!(c.q_strong, 10.0);
        assert_eq!(c.balance_band, (0.99, 1.01));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_rescales_threshold_with_precision() {
        let c = IslaConfig::builder().precision(0.5).build().unwrap();
        assert_eq!(c.threshold, 0.5 / 1000.0);
        let c = IslaConfig::builder()
            .threshold(1e-6)
            .precision(0.5)
            .build()
            .unwrap();
        assert_eq!(c.threshold, 1e-6, "explicit threshold survives");
    }

    #[test]
    fn rejects_bad_parameters() {
        let cases: Vec<(IslaConfigBuilder, &str)> = vec![
            (IslaConfig::builder().precision(0.0), "precision"),
            (IslaConfig::builder().confidence(1.0), "confidence"),
            (IslaConfig::builder().p1(2.5), "p1 < p2"),
            (IslaConfig::builder().lambda(1.0), "lambda"),
            (IslaConfig::builder().eta(0.0), "eta"),
            (IslaConfig::builder().relaxation(0.5), "relaxation"),
            (IslaConfig::builder().sigma_pilot_size(1), "pilot"),
            (
                IslaConfig::builder().balance_band((1.01, 0.99)),
                "balance band",
            ),
            (IslaConfig::builder().q_neutral_hi(1.0), "q bands"),
            (IslaConfig::builder().q_moderate(0.5), "q' tiers"),
            (IslaConfig::builder().max_iterations(0), "max_iterations"),
            (
                IslaConfig::builder().shift_policy(ShiftPolicy::Fixed(f64::NAN)),
                "fixed shift",
            ),
            (IslaConfig::builder().known_sigma(Some(-1.0)), "known sigma"),
        ];
        for (builder, what) in cases {
            assert!(
                matches!(builder.build(), Err(IslaError::InvalidConfig(_))),
                "expected {what} to be rejected"
            );
        }
    }

    #[test]
    fn fingerprint_separates_distinct_configs() {
        let base = IslaConfig::default();
        assert_eq!(base.fingerprint(), IslaConfig::default().fingerprint());
        let variants = [
            IslaConfig::builder().precision(0.2).build().unwrap(),
            IslaConfig::builder().confidence(0.9).build().unwrap(),
            IslaConfig::builder()
                .known_sigma(Some(1.0))
                .build()
                .unwrap(),
            IslaConfig::builder()
                .shift_policy(ShiftPolicy::Fixed(1.0))
                .build()
                .unwrap(),
            IslaConfig::builder()
                .modulation_style(ModulationStyle::PaperLiteral)
                .build()
                .unwrap(),
            IslaConfig::builder().sketch_sigma(true).build().unwrap(),
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
    }

    #[test]
    fn threshold_must_be_positive_even_after_precision() {
        let r = IslaConfig::builder().threshold(0.0).build();
        assert!(matches!(r, Err(IslaError::InvalidConfig(_))));
    }
}
