//! The Summarization module (paper Section II-C): size-weighted
//! combination of per-block partial answers.
//!
//! "The final answer is calculated as Σ avgⱼ·|Bⱼ|/M" — a convex
//! combination of the partial answers with weights proportional to block
//! sizes, so blocks with more data contribute more.

use crate::error::IslaError;

/// Combines `(partial_answer, block_rows)` pairs into the final answer.
///
/// Zero-row blocks are ignored (they carry no weight).
///
/// # Errors
///
/// [`IslaError::InsufficientData`] when no rows exist at all.
pub fn combine_partials(partials: &[(f64, u64)]) -> Result<f64, IslaError> {
    let total_rows: u64 = partials.iter().map(|&(_, rows)| rows).sum();
    if total_rows == 0 {
        return Err(IslaError::InsufficientData(
            "no rows across blocks to summarize".to_string(),
        ));
    }
    let mut acc = isla_stats::NeumaierSum::new();
    for &(answer, rows) in partials {
        if rows > 0 {
            acc.add(answer * (rows as f64 / total_rows as f64));
        }
    }
    Ok(acc.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_blocks_average_evenly() {
        let partials = [(10.0, 100), (20.0, 100), (30.0, 100)];
        assert!((combine_partials(&partials).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn weights_follow_block_sizes() {
        // The paper's formula with |B₁|=900, |B₂|=100.
        let partials = [(10.0, 900), (110.0, 100)];
        assert!((combine_partials(&partials).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_row_blocks_are_ignored() {
        let partials = [(1e18, 0), (42.0, 10)];
        assert_eq!(combine_partials(&partials).unwrap(), 42.0);
    }

    #[test]
    fn all_empty_is_an_error() {
        assert!(matches!(
            combine_partials(&[(1.0, 0), (2.0, 0)]),
            Err(IslaError::InsufficientData(_))
        ));
        assert!(matches!(
            combine_partials(&[]),
            Err(IslaError::InsufficientData(_))
        ));
    }

    #[test]
    fn result_is_a_convex_combination() {
        // The combined answer always lies inside [min, max] of partials.
        let partials = [(99.2, 123), (100.5, 77), (100.1, 999), (99.9, 5)];
        let combined = combine_partials(&partials).unwrap();
        assert!((99.2..=100.5).contains(&combined));
    }
}
