//! Data boundaries and regions (paper Section IV-A.1).
//!
//! ISLA divides the value domain into five regions around the sketch
//! estimator, following the "3σ rule" but stopping at `p2σ` (data beyond
//! `±2σ` "count for a limited proportion … and are too far away from the
//! middle axis"):
//!
//! ```text
//!   TooSmall   |   Small   |   Normal    |   Large   |  TooLarge
//! ─────────────┼───────────┼─────────────┼───────────┼────────────→
//!        c − p2σ      c − p1σ       c + p1σ      c + p2σ      (c = sketch0)
//! ```
//!
//! Only S and L samples participate in the aggregation: they are
//! "featured enough to represent the whole distribution" while excluding
//! both the over-weighted center and the outlier tails.

/// The five regions of the data division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// `(−∞, c − p2σ]` — low outliers, discarded.
    TooSmall,
    /// `(c − p2σ, c − p1σ)` — the S region, participates in aggregation.
    Small,
    /// `[c − p1σ, c + p1σ]` — the central region, discarded (its mass is
    /// implied by the S/L shape).
    Normal,
    /// `(c + p1σ, c + p2σ)` — the L region, participates in aggregation.
    Large,
    /// `[c + p2σ, +∞)` — high outliers, discarded (their influence on AVG
    /// is exactly what the leverage scheme eliminates).
    TooLarge,
}

impl Region {
    /// Whether samples in this region participate in the aggregation.
    #[inline]
    pub fn participates(self) -> bool {
        matches!(self, Region::Small | Region::Large)
    }
}

/// The concrete cut points for a given `sketch0` and `σ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataBoundaries {
    center: f64,
    sigma: f64,
    p1: f64,
    p2: f64,
    // Precomputed cuts, in increasing order.
    ts_upper: f64,
    s_upper: f64,
    n_upper: f64,
    l_upper: f64,
}

impl DataBoundaries {
    /// Builds boundaries around `center` (= `sketch0`) with scale `sigma`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p1 < p2`, `sigma > 0`, and `center` is finite —
    /// boundary construction is internal to the pipeline, which validates
    /// configuration up front.
    pub fn new(center: f64, sigma: f64, p1: f64, p2: f64) -> Self {
        assert!(center.is_finite(), "boundary center must be finite");
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        assert!(0.0 < p1 && p1 < p2 && p2.is_finite(), "need 0 < p1 < p2");
        Self {
            center,
            sigma,
            p1,
            p2,
            ts_upper: center - p2 * sigma,
            s_upper: center - p1 * sigma,
            n_upper: center + p1 * sigma,
            l_upper: center + p2 * sigma,
        }
    }

    /// Classifies a value into its region.
    ///
    /// Endpoint conventions follow the paper exactly: TS is closed above,
    /// S and L are open, N is closed, TL is closed below.
    #[inline]
    pub fn classify(&self, v: f64) -> Region {
        if v <= self.ts_upper {
            Region::TooSmall
        } else if v < self.s_upper {
            Region::Small
        } else if v <= self.n_upper {
            Region::Normal
        } else if v < self.l_upper {
            Region::Large
        } else {
            Region::TooLarge
        }
    }

    /// The boundary center (`sketch0`).
    #[inline]
    pub fn center(&self) -> f64 {
        self.center
    }

    /// The scale `σ` the boundaries were built with.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Lower edge of the S region, `center − p2σ`.
    ///
    /// All participating (S/L) values exceed this, so the leverage score
    /// monotonicity precondition ("all the data are positive") holds
    /// exactly when this edge is non-negative — see
    /// [`crate::shift`].
    #[inline]
    pub fn s_lower(&self) -> f64 {
        self.ts_upper
    }

    /// Upper edge of the L region, `center + p2σ`.
    #[inline]
    pub fn l_upper(&self) -> f64 {
        self.l_upper
    }

    /// Returns these boundaries translated by `+d` (for the negative-data
    /// shift of the paper's footnote 1).
    pub fn shifted(&self, d: f64) -> Self {
        Self::new(self.center + d, self.sigma, self.p1, self.p2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper §IV-B Example 1: sketch0 = 6.2, p1σ = 1, p2σ = 3 ⇒
    /// S = (3.2, 5.2), L = (7.2, 9.2).
    fn example_boundaries() -> DataBoundaries {
        DataBoundaries::new(6.2, 1.0, 1.0, 3.0)
    }

    #[test]
    fn paper_example_classification() {
        let b = example_boundaries();
        // Sample set {2, 3, 4, 5, 6, 7, 8, 15}: only 4 and 5 are S, 8 is L.
        assert_eq!(b.classify(2.0), Region::TooSmall);
        assert_eq!(b.classify(3.0), Region::TooSmall); // 3.0 ≤ 3.2
        assert_eq!(b.classify(4.0), Region::Small);
        assert_eq!(b.classify(5.0), Region::Small);
        assert_eq!(b.classify(6.0), Region::Normal);
        assert_eq!(b.classify(7.0), Region::Normal); // 7.0 ≤ 7.2
        assert_eq!(b.classify(8.0), Region::Large);
        assert_eq!(b.classify(15.0), Region::TooLarge);
    }

    #[test]
    fn endpoint_conventions() {
        let b = example_boundaries();
        assert_eq!(b.classify(3.2), Region::TooSmall, "TS is closed above");
        assert_eq!(b.classify(3.2 + 1e-12), Region::Small, "S is open below");
        assert_eq!(b.classify(5.2), Region::Normal, "N is closed below");
        assert_eq!(b.classify(7.2), Region::Normal, "N is closed above");
        assert_eq!(b.classify(9.2), Region::TooLarge, "TL is closed below");
        assert_eq!(b.classify(9.2 - 1e-12), Region::Large, "L is open above");
    }

    #[test]
    fn only_s_and_l_participate() {
        assert!(Region::Small.participates());
        assert!(Region::Large.participates());
        assert!(!Region::TooSmall.participates());
        assert!(!Region::Normal.participates());
        assert!(!Region::TooLarge.participates());
    }

    #[test]
    fn shifted_boundaries_translate_classification() {
        let b = example_boundaries();
        let s = b.shifted(100.0);
        assert_eq!(s.center(), 106.2);
        assert_eq!(s.classify(104.0), Region::Small);
        assert_eq!(s.classify(108.0), Region::Large);
        assert_eq!(b.sigma(), s.sigma());
    }

    #[test]
    fn accessors() {
        let b = example_boundaries();
        assert!((b.s_lower() - 3.2).abs() < 1e-12);
        assert!((b.l_upper() - 9.2).abs() < 1e-12);
        assert_eq!(b.center(), 6.2);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_zero_sigma() {
        let _ = DataBoundaries::new(0.0, 0.0, 0.5, 2.0);
    }

    #[test]
    #[should_panic(expected = "need 0 < p1 < p2")]
    fn rejects_inverted_ps() {
        let _ = DataBoundaries::new(0.0, 1.0, 2.0, 0.5);
    }
}
