//! The sampling-phase accumulator (paper Algorithm 1).
//!
//! Every drawn sample is classified against the data boundaries; S and L
//! samples are folded into the `paramS` / `paramL` power sums
//! (`{counter, sum, squareSum, cubeSum}`) and then dropped. This is what
//! makes ISLA storage-free and order-insensitive: the objective function
//! is built from the power sums alone, which are invariant under
//! permutation of the sampling sequence.

use isla_stats::PowerSums;

use crate::boundaries::{DataBoundaries, Region};

/// Accumulated sampling-phase state for one block.
#[derive(Debug, Clone, Copy)]
pub struct SampleAccumulator {
    boundaries: DataBoundaries,
    param_s: PowerSums,
    param_l: PowerSums,
    total_offered: u64,
}

impl SampleAccumulator {
    /// Creates an empty accumulator over the given boundaries.
    pub fn new(boundaries: DataBoundaries) -> Self {
        Self {
            boundaries,
            param_s: PowerSums::new(),
            param_l: PowerSums::new(),
            total_offered: 0,
        }
    }

    /// Classifies one sample, folding it into the matching region's power
    /// sums (Algorithm 1 lines 4–12). Returns the region for diagnostics.
    #[inline]
    pub fn offer(&mut self, value: f64) -> Region {
        self.total_offered += 1;
        let region = self.boundaries.classify(value);
        match region {
            Region::Small => self.param_s.update(value),
            Region::Large => self.param_l.update(value),
            _ => {} // "Drop a" — TS, N, TL samples are discarded.
        }
        region
    }

    /// Merges another accumulator (same boundaries) into this one.
    ///
    /// This is the online-aggregation primitive of paper §VII-A: a new
    /// round of sampling produces a fresh accumulator that is merged into
    /// the persisted one.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries differ — merging across different data
    /// divisions is meaningless.
    pub fn merge(&mut self, other: &SampleAccumulator) {
        assert_eq!(
            self.boundaries, other.boundaries,
            "cannot merge accumulators over different data boundaries"
        );
        self.param_s.merge(&other.param_s);
        self.param_l.merge(&other.param_l);
        self.total_offered += other.total_offered;
    }

    /// The boundaries this accumulator classifies against.
    pub fn boundaries(&self) -> &DataBoundaries {
        &self.boundaries
    }

    /// `paramS`: power sums of the S samples.
    pub fn param_s(&self) -> &PowerSums {
        &self.param_s
    }

    /// `paramL`: power sums of the L samples.
    pub fn param_l(&self) -> &PowerSums {
        &self.param_l
    }

    /// `u = |S|`.
    pub fn u(&self) -> u64 {
        self.param_s.count()
    }

    /// `v = |L|`.
    pub fn v(&self) -> u64 {
        self.param_l.count()
    }

    /// Total samples offered, including discarded ones.
    pub fn total_offered(&self) -> u64 {
        self.total_offered
    }

    /// The deviation degree `dev = |S|/|L|`, or `None` when `|L| = 0`.
    pub fn dev(&self) -> Option<f64> {
        (self.v() > 0).then(|| self.u() as f64 / self.v() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_accumulator() -> SampleAccumulator {
        // Paper §IV-B Example 1 boundaries.
        SampleAccumulator::new(DataBoundaries::new(6.2, 1.0, 1.0, 3.0))
    }

    #[test]
    fn paper_example_moments() {
        let mut acc = paper_accumulator();
        for v in [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 15.0] {
            acc.offer(v);
        }
        assert_eq!(acc.total_offered(), 8);
        // S = {4, 5}: Σ=9, Σ²=41, Σ³=189.
        assert_eq!(acc.u(), 2);
        assert_eq!(acc.param_s().sum(), 9.0);
        assert_eq!(acc.param_s().sum_sq(), 41.0);
        assert_eq!(acc.param_s().sum_cube(), 189.0);
        // L = {8}: Σ=8, Σ²=64, Σ³=512.
        assert_eq!(acc.v(), 1);
        assert_eq!(acc.param_l().sum(), 8.0);
        assert_eq!(acc.param_l().sum_sq(), 64.0);
        assert_eq!(acc.param_l().sum_cube(), 512.0);
        assert_eq!(acc.dev(), Some(2.0));
    }

    #[test]
    fn order_insensitivity() {
        // The paper's motivating robustness claim: permuting the sampling
        // sequence leaves the accumulated state identical.
        let samples = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 15.0];
        let mut forward = paper_accumulator();
        let mut backward = paper_accumulator();
        for &v in &samples {
            forward.offer(v);
        }
        for &v in samples.iter().rev() {
            backward.offer(v);
        }
        assert_eq!(forward.param_s(), backward.param_s());
        assert_eq!(forward.param_l(), backward.param_l());
    }

    #[test]
    fn merge_equals_sequential_offers() {
        let samples = [2.0, 4.0, 5.0, 8.0, 8.5, 15.0, 6.0];
        let mut whole = paper_accumulator();
        for &v in &samples {
            whole.offer(v);
        }
        let mut left = paper_accumulator();
        let mut right = paper_accumulator();
        for &v in &samples[..3] {
            left.offer(v);
        }
        for &v in &samples[3..] {
            right.offer(v);
        }
        left.merge(&right);
        assert_eq!(left.param_s(), whole.param_s());
        assert_eq!(left.param_l(), whole.param_l());
        assert_eq!(left.total_offered(), whole.total_offered());
    }

    #[test]
    #[should_panic(expected = "different data boundaries")]
    fn merge_rejects_mismatched_boundaries() {
        let mut a = paper_accumulator();
        let b = SampleAccumulator::new(DataBoundaries::new(0.0, 1.0, 0.5, 2.0));
        a.merge(&b);
    }

    #[test]
    fn dev_none_when_l_empty() {
        let mut acc = paper_accumulator();
        acc.offer(4.0); // S only
        assert_eq!(acc.dev(), None);
        assert_eq!(acc.u(), 1);
        assert_eq!(acc.v(), 0);
    }

    #[test]
    fn offer_reports_regions() {
        let mut acc = paper_accumulator();
        assert_eq!(acc.offer(4.0), Region::Small);
        assert_eq!(acc.offer(8.0), Region::Large);
        assert_eq!(acc.offer(6.0), Region::Normal);
        assert_eq!(acc.offer(0.0), Region::TooSmall);
        assert_eq!(acc.offer(99.0), Region::TooLarge);
        // Discarded regions leave the params untouched.
        assert_eq!(acc.u() + acc.v(), 2);
        assert_eq!(acc.total_offered(), 5);
    }
}
