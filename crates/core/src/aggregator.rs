//! The top-level ISLA aggregator: Pre-estimation → per-block Calculation
//! → Summarization (the full system of paper Fig. 2).
//!
//! This is a thin wrapper over [`crate::engine`]: it prepares a
//! [`crate::engine::QueryPlan`] and executes it on the
//! [`crate::engine::SequentialScheduler`].

use rand::RngCore;

use isla_storage::BlockSet;

use crate::block_exec::BlockOutcome;
use crate::config::IslaConfig;
use crate::engine::{self, RateSpec, SequentialScheduler};
use crate::error::IslaError;
use crate::pre_estimation::PreEstimate;

/// The result of one ISLA aggregation.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    /// The approximate AVG — the headline answer.
    pub estimate: f64,
    /// The approximate SUM, `estimate × M` (the paper's SUM reduction).
    pub sum_estimate: f64,
    /// Total rows `M` across blocks.
    pub data_size: u64,
    /// Pre-estimation output (σ̂, `sketch0`, rate, pilot sizes).
    pub pre: PreEstimate,
    /// Negative-data translation applied (0 when none).
    pub shift: f64,
    /// Per-block outcomes, in block order.
    pub blocks: Vec<BlockOutcome>,
    /// Samples drawn in the calculation phase (excludes pilots).
    pub total_samples: u64,
}

impl AggregateResult {
    /// Samples drawn including the pre-estimation pilots.
    pub fn total_samples_with_pilots(&self) -> u64 {
        self.total_samples + self.pre.sigma_pilot_used + self.pre.sketch_pilot_used
    }
}

/// Executes leverage-based approximate AVG aggregation with the iterative
/// modulation scheme.
///
/// Construct with a validated [`IslaConfig`]; call
/// [`IslaAggregator::aggregate`] per dataset. The aggregator is stateless
/// across calls and can be reused (and shared across threads).
#[derive(Debug, Clone)]
pub struct IslaAggregator {
    config: IslaConfig,
}

impl IslaAggregator {
    /// Creates an aggregator, validating the configuration.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] for out-of-domain parameters.
    pub fn new(config: IslaConfig) -> Result<Self, IslaError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &IslaConfig {
        &self.config
    }

    /// Runs the full pipeline at the configured sampling rate.
    ///
    /// # Errors
    ///
    /// Storage failures or insufficient data (see [`IslaError`]).
    pub fn aggregate(
        &self,
        data: &BlockSet,
        rng: &mut dyn RngCore,
    ) -> Result<AggregateResult, IslaError> {
        self.aggregate_with_rate_factor(data, 1.0, rng)
    }

    /// Runs the pipeline with the main sampling rate scaled by `factor`.
    ///
    /// The paper's Table V experiment runs ISLA at one third of the rate
    /// the precision target demands (`factor = 1/3`) to demonstrate the
    /// sample-efficiency of the leverage scheme.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] if `factor` is not in `(0, 1]`;
    /// otherwise as [`IslaAggregator::aggregate`].
    pub fn aggregate_with_rate_factor(
        &self,
        data: &BlockSet,
        factor: f64,
        rng: &mut dyn RngCore,
    ) -> Result<AggregateResult, IslaError> {
        self.run(data, RateSpec::Scaled(factor), rng)
    }

    /// Runs the pipeline at an explicit calculation-phase sampling rate,
    /// ignoring the precision-derived rate (the pilots still size
    /// themselves from the configuration).
    ///
    /// Used by fixed-budget comparisons against the baselines.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] if `rate` is not in `(0, 1]`;
    /// otherwise as [`IslaAggregator::aggregate`].
    pub fn aggregate_with_absolute_rate(
        &self,
        data: &BlockSet,
        rate: f64,
        rng: &mut dyn RngCore,
    ) -> Result<AggregateResult, IslaError> {
        self.run(data, RateSpec::Absolute(rate), rng)
    }

    fn run(
        &self,
        data: &BlockSet,
        rate: RateSpec,
        rng: &mut dyn RngCore,
    ) -> Result<AggregateResult, IslaError> {
        let out = engine::run(data, &self.config, rate, &SequentialScheduler, rng)?;
        Ok(AggregateResult {
            estimate: out.estimate,
            sum_estimate: out.sum_estimate,
            data_size: out.data_size,
            pre: out.pre,
            shift: out.shift,
            blocks: out.blocks,
            total_samples: out.total_samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::{exponential_dataset, normal_dataset, normal_values};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn aggregator(e: f64) -> IslaAggregator {
        IslaAggregator::new(IslaConfig::builder().precision(e).build().unwrap()).unwrap()
    }

    #[test]
    fn meets_precision_on_paper_default_workload() {
        // N(100, 20²), e = 0.5 (the paper's Table V precision), 10 blocks.
        // The precision contract is probabilistic (β = 0.95), so assert
        // over several seeds: the mean error stays well under e and most
        // runs land inside the interval (calibration: mean |err| ≈ 0.24,
        // ~90% within e).
        let ds = normal_dataset(100.0, 20.0, 600_000, 10, 42);
        let mut total_err = 0.0;
        let mut within = 0;
        let runs = 10;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(seed);
            let result = aggregator(0.5).aggregate(&ds.blocks, &mut rng).unwrap();
            let err = (result.estimate - ds.true_mean).abs();
            total_err += err;
            within += u32::from(err <= 0.5);
            assert_eq!(result.blocks.len(), 10);
            assert_eq!(result.data_size, 600_000);
            assert!((result.sum_estimate - result.estimate * 600_000.0).abs() < 1e-3);
            assert!(result.total_samples > 0);
            assert!(result.total_samples_with_pilots() > result.total_samples);
        }
        let mean_err = total_err / runs as f64;
        assert!(mean_err < 0.5, "mean |error| {mean_err} exceeds e");
        assert!(within >= 7, "only {within}/{runs} runs inside the interval");
    }

    #[test]
    fn reduced_rate_still_lands_close() {
        // The Table V setting: ISLA at r/3.
        let ds = normal_dataset(100.0, 20.0, 600_000, 10, 43);
        let mut rng = StdRng::seed_from_u64(2);
        let full = aggregator(0.5).aggregate(&ds.blocks, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let third = aggregator(0.5)
            .aggregate_with_rate_factor(&ds.blocks, 1.0 / 3.0, &mut rng)
            .unwrap();
        assert!((third.estimate - ds.true_mean).abs() < 0.5);
        assert!(
            third.total_samples * 2 < full.total_samples,
            "r/3 must draw well under half the samples: {} vs {}",
            third.total_samples,
            full.total_samples
        );
    }

    #[test]
    fn absolute_rate_controls_sample_count() {
        let ds = normal_dataset(100.0, 20.0, 100_000, 10, 49);
        let mut rng = StdRng::seed_from_u64(9);
        let result = aggregator(0.5)
            .aggregate_with_absolute_rate(&ds.blocks, 0.05, &mut rng)
            .unwrap();
        // 5% of 100k rows = 5000 samples (± per-block rounding).
        assert!(
            (result.total_samples as i64 - 5_000).abs() <= 10,
            "drew {} samples",
            result.total_samples
        );
        assert!((result.estimate - ds.true_mean).abs() < 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for rate in [0.0, -1.0, 1.5] {
            assert!(matches!(
                aggregator(0.5).aggregate_with_absolute_rate(&ds.blocks, rate, &mut rng),
                Err(IslaError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn rejects_bad_rate_factor() {
        let ds = normal_dataset(100.0, 20.0, 1_000, 2, 44);
        let mut rng = StdRng::seed_from_u64(3);
        for factor in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(matches!(
                aggregator(0.5).aggregate_with_rate_factor(&ds.blocks, factor, &mut rng),
                Err(IslaError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn constant_data_short_circuits() {
        let data = BlockSet::from_values(vec![3.25; 5_000], 5);
        let mut rng = StdRng::seed_from_u64(4);
        let result = aggregator(0.1).aggregate(&data, &mut rng).unwrap();
        assert_eq!(result.estimate, 3.25);
        assert!(result.blocks.is_empty());
        assert_eq!(result.sum_estimate, 3.25 * 5_000.0);
    }

    #[test]
    fn negative_data_is_shifted_and_unshifted() {
        // Same normal data translated to be fully negative.
        let values: Vec<f64> = normal_values(100.0, 20.0, 300_000, 45)
            .into_iter()
            .map(|v| v - 400.0)
            .collect();
        let truth = isla_stats::summary::mean(&values).unwrap();
        let data = BlockSet::from_values(values, 10);
        let mut rng = StdRng::seed_from_u64(5);
        let result = aggregator(0.5).aggregate(&data, &mut rng).unwrap();
        assert!(result.shift > 0.0, "auto shift must engage");
        assert!(
            (result.estimate - truth).abs() < 0.5,
            "estimate {} vs truth {truth}",
            result.estimate
        );
    }

    #[test]
    fn exponential_data_works_via_shift() {
        // γ = 0.1 ⇒ mean 10, σ 10; the S window reaches below zero and
        // triggers the auto-shift (paper Table VI workload).
        let ds = exponential_dataset(0.1, 400_000, 10, 46);
        let mut rng = StdRng::seed_from_u64(6);
        let result = aggregator(0.25).aggregate(&ds.blocks, &mut rng).unwrap();
        assert!(result.shift > 0.0);
        assert!(
            (result.estimate - ds.true_mean).abs() < 0.6,
            "estimate {} vs truth {}",
            result.estimate,
            ds.true_mean
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = normal_dataset(100.0, 20.0, 100_000, 5, 47);
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = aggregator(0.5).aggregate(&ds.blocks, &mut rng1).unwrap();
        let b = aggregator(0.5).aggregate(&ds.blocks, &mut rng2).unwrap();
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.total_samples, b.total_samples);
    }

    #[test]
    fn estimate_is_convex_combination_of_block_answers() {
        let ds = normal_dataset(100.0, 20.0, 200_000, 8, 48);
        let mut rng = StdRng::seed_from_u64(8);
        let result = aggregator(0.5).aggregate(&ds.blocks, &mut rng).unwrap();
        let lo = result
            .blocks
            .iter()
            .map(|b| b.answer)
            .fold(f64::INFINITY, f64::min);
        let hi = result
            .blocks
            .iter()
            .map(|b| b.answer)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(result.estimate >= lo && result.estimate <= hi);
    }
}
