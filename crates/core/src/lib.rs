//! # ISLA — An Iterative Scheme for Leverage-based Approximate Aggregation
//!
//! A from-scratch Rust implementation of the approximate AVG/SUM
//! aggregation scheme of Han, Wang, Wan & Li (ICDE 2019). ISLA answers
//! `AVG` queries over block-partitioned data from a small uniform sample,
//! with a user-chosen precision `e` and confidence `β`, by iteratively
//! reconciling two estimators:
//!
//! * the **sketch estimator** — a pilot estimate with a relaxed precision
//!   `tₑ·e`, a "rough picture" of the answer ([`pre_estimation`]);
//! * the **l-estimator** — a leverage-reweighted mean of the samples that
//!   fall in the *Small* and *Large* regions of the data boundaries,
//!   which is a closed-form linear function `μ̂ = k·α + c` of the leverage
//!   degree `α` ([`estimator`], Theorem 3 of the paper).
//!
//! The pipeline per block (the **Calculation module** of the paper's
//! system):
//!
//! 1. classify uniform samples against the data boundaries built from
//!    `sketch0 ± p1σ / ± p2σ` ([`boundaries`]), folding S and L samples
//!    into running power sums — samples are never stored
//!    ([`accumulate`], Algorithm 1);
//! 2. pick the leverage allocation parameter `q` from the deviation
//!    degree `dev = |S|/|L|` ([`leverage`]);
//! 3. derive the modulation case from `sign(D₀)` and `dev`
//!    ([`deviation`], Cases 1–5) and iterate `δα`/`δsketch` steps until
//!    the objective `D = μ̂ − sketch` falls below the threshold
//!    ([`modulation`], Algorithm 2);
//! 4. combine per-block partial answers weighted by block size
//!    ([`summarize`], the **Summarization module**).
//!
//! The pipeline itself is owned by the [`engine`] module — a
//! [`engine::QueryPlan`] (validated config + pre-estimate + boundaries),
//! pluggable [`engine::BlockScheduler`]s (sequential, pooled,
//! deadline-capped) and a mergeable [`engine::PartialAggregate`] — and
//! the top-level entry point [`IslaAggregator`] is a thin wrapper over
//! it, as are the distributed coordinator and the query executor.
//! Extensions from the paper's Section VII are implemented in [`online`]
//! (progressive refinement without re-sampling) and [`noniid`]
//! (per-block sampling rates and boundaries for non-identically-
//! distributed blocks).
//!
//! ```
//! use isla_core::{IslaAggregator, IslaConfig};
//! use isla_storage::BlockSet;
//! use rand::SeedableRng;
//!
//! // 100k values around 42.0, split into 10 blocks.
//! let values: Vec<f64> = (0..100_000)
//!     .map(|i| 42.0 + ((i % 97) as f64 - 48.0) / 16.0)
//!     .collect();
//! let data = BlockSet::from_values(values, 10);
//!
//! let config = IslaConfig::builder()
//!     .precision(0.05)
//!     .confidence(0.95)
//!     .build()
//!     .unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let result = IslaAggregator::new(config)
//!     .unwrap()
//!     .aggregate(&data, &mut rng)
//!     .unwrap();
//! assert!((result.estimate - 42.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulate;
pub mod aggregator;
pub mod block_exec;
pub mod boundaries;
pub mod config;
pub mod continuous;
pub mod deviation;
pub mod engine;
pub mod error;
pub mod estimator;
pub mod extremes;
pub mod leverage;
pub mod modulation;
pub mod noniid;
pub mod online;
pub mod pre_estimation;
pub mod shift;
pub mod summarize;

pub use accumulate::SampleAccumulator;
pub use aggregator::{AggregateResult, IslaAggregator};
pub use block_exec::{execute_block, iteration_phase, BlockOutcome, Fallback, IterationPhase};
pub use boundaries::{DataBoundaries, Region};
pub use config::{IslaConfig, IslaConfigBuilder, ModulationStyle, ShiftPolicy};
pub use continuous::{ContinuousAnswer, ContinuousQuery};
pub use deviation::{assess, DeviationAssessment, ModulationCase};
pub use error::IslaError;
pub use estimator::LinearEstimator;
pub use extremes::{ExtremeAggregator, ExtremeKind, ExtremeResult};
pub use leverage::{determine_q, LeverageAllocation};
pub use modulation::{iterate, IterationStep, ModulationOutcome};
pub use pre_estimation::{
    finish_pilot_fold, fold_pilot_segment, pre_estimate, pre_estimate_with, PilotFold, PreEstimate,
};
pub use summarize::combine_partials;
