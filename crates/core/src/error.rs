//! Error type for the ISLA core.

use std::fmt;

use isla_storage::StorageError;

/// Errors raised by ISLA aggregation.
#[derive(Debug)]
pub enum IslaError {
    /// A configuration parameter is out of its valid domain.
    InvalidConfig(String),
    /// The underlying storage failed.
    Storage(StorageError),
    /// The data (or pilot sample) cannot support the computation,
    /// e.g. fewer than two pilot samples to estimate σ.
    InsufficientData(String),
    /// An internal invariant the engine relies on was violated — e.g. a
    /// worker thread disappeared mid-run. Always a bug, never bad input.
    Internal(String),
}

impl fmt::Display for IslaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IslaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            IslaError::Storage(e) => write!(f, "storage error: {e}"),
            IslaError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            IslaError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for IslaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IslaError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for IslaError {
    fn from(e: StorageError) -> Self {
        IslaError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = IslaError::InvalidConfig("precision must be positive".into());
        assert!(e.to_string().contains("invalid configuration"));
        let s: IslaError = StorageError::Empty.into();
        assert!(s.to_string().contains("storage error"));
        assert!(std::error::Error::source(&s).is_some());
        assert!(std::error::Error::source(&e).is_none());
        let i = IslaError::InsufficientData("pilot too small".into());
        assert!(i.to_string().contains("pilot too small"));
    }
}
