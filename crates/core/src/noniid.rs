//! Non-i.i.d. aggregation (paper Section VII-C): per-block sampling rates
//! and per-block data boundaries.
//!
//! When blocks hold different distributions, a single global `sketch0`
//! and rate work poorly. Following the paper:
//!
//! * blocks with higher local variance get higher sampling rates through
//!   block leverages `blevᵢ = (1 + σᵢ²) / (b + Σσⱼ²)` and
//!   `rateᵢ = r·M·blevᵢ / |Bᵢ|` (capped at 1) — note `Σ blevᵢ = 1`, so
//!   the total expected sample size stays `r·M`;
//! * each block gets its own pilot, `sketch0ᵢ`, and boundaries, and runs
//!   the standard Algorithm 1 + 2 against them.

use rand::RngCore;

use isla_stats::{required_sample_size, WelfordMoments};
use isla_storage::{sample_from_block, BlockSet};

use crate::block_exec::{execute_block, BlockOutcome};
use crate::boundaries::DataBoundaries;
use crate::config::IslaConfig;
use crate::error::IslaError;
use crate::shift::compute_shift;
use crate::summarize::combine_partials;

/// Per-block pre-estimation for the non-i.i.d. pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPreEstimate {
    /// Local standard deviation `σᵢ`.
    pub sigma: f64,
    /// Local sketch `sketch0ᵢ`.
    pub sketch0: f64,
    /// Block leverage `blevᵢ`.
    pub blev: f64,
    /// Local sampling rate `rateᵢ`.
    pub rate: f64,
}

/// The result of a non-i.i.d. aggregation.
#[derive(Debug, Clone)]
pub struct NonIidResult {
    /// The approximate AVG.
    pub estimate: f64,
    /// Total rows `M`.
    pub data_size: u64,
    /// Per-block pre-estimates, in block order.
    pub pre: Vec<BlockPreEstimate>,
    /// Detailed outcomes for blocks that ran the full pipeline
    /// (degenerate/empty blocks are summarized in `pre` only).
    pub blocks: Vec<BlockOutcome>,
    /// Calculation-phase samples drawn.
    pub total_samples: u64,
}

/// ISLA for non-identically-distributed blocks.
#[derive(Debug, Clone)]
pub struct NonIidAggregator {
    config: IslaConfig,
}

impl NonIidAggregator {
    /// Creates the aggregator, validating the configuration.
    ///
    /// # Errors
    ///
    /// [`IslaError::InvalidConfig`] for out-of-domain parameters.
    pub fn new(config: IslaConfig) -> Result<Self, IslaError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &IslaConfig {
        &self.config
    }

    /// Runs the non-i.i.d. pipeline.
    ///
    /// # Errors
    ///
    /// Storage failures; [`IslaError::InsufficientData`] when the data
    /// cannot support the pilots.
    pub fn aggregate(
        &self,
        data: &BlockSet,
        rng: &mut dyn RngCore,
    ) -> Result<NonIidResult, IslaError> {
        let cfg = &self.config;
        let data_size = data.total_len();
        if data_size == 0 {
            return Err(IslaError::InsufficientData(
                "block set holds no rows".to_string(),
            ));
        }
        let b = data.block_count();

        // Per-block σᵢ pilots; the pooled pilot drives the overall rate.
        let mut sigmas = Vec::with_capacity(b);
        let mut pooled = WelfordMoments::new();
        for block in data.iter() {
            if block.is_empty() {
                sigmas.push(0.0);
                continue;
            }
            let pilot_size = cfg.sigma_pilot_size.min(block.len()).max(2);
            let mut local = WelfordMoments::new();
            sample_from_block(block.as_ref(), pilot_size, rng, &mut |v| {
                local.update(v);
                pooled.update(v);
            })?;
            sigmas.push(local.std_dev_sample().unwrap_or(0.0));
        }
        let overall_sigma = pooled.std_dev_sample().ok_or_else(|| {
            IslaError::InsufficientData("pooled pilot needs at least 2 samples".to_string())
        })?;
        if overall_sigma == 0.0 {
            // Constant data across all blocks: the answer is exact.
            let value = pooled.mean().ok_or_else(|| {
                IslaError::InsufficientData("pooled pilot drew no samples".to_string())
            })?;
            let pre = sigmas
                .iter()
                .map(|&s| BlockPreEstimate {
                    sigma: s,
                    sketch0: value,
                    blev: 1.0 / b as f64,
                    rate: 0.0,
                })
                .collect();
            return Ok(NonIidResult {
                estimate: value,
                data_size,
                pre,
                blocks: Vec::new(),
                total_samples: 0,
            });
        }

        // Overall rate r from the pooled σ (paper: "the samples from the
        // blocks are collected to generate the overall sampling rate r").
        let overall_rate =
            isla_stats::sampling_rate(overall_sigma, cfg.precision, cfg.confidence, data_size);
        let sigma_sq_sum: f64 = sigmas.iter().map(|s| s * s).sum();
        let relaxed_e = cfg.relaxation * cfg.precision;

        let mut pre = Vec::with_capacity(b);
        let mut blocks = Vec::new();
        let mut partials: Vec<(f64, u64)> = Vec::with_capacity(b);
        let mut total_samples = 0u64;
        for (block_id, block) in data.iter().enumerate() {
            let sigma_i = sigmas[block_id];
            let rows = block.len();
            let blev = (1.0 + sigma_i * sigma_i) / (b as f64 + sigma_sq_sum);
            if rows == 0 {
                pre.push(BlockPreEstimate {
                    sigma: sigma_i,
                    sketch0: 0.0,
                    blev,
                    rate: 0.0,
                });
                continue;
            }
            let rate = (overall_rate * data_size as f64 * blev / rows as f64).min(1.0);

            if sigma_i == 0.0 {
                // Locally constant block: one probe pins its mean exactly.
                let mut probe_rng = crate::engine::seed::seeded_rng(rng.next_u64());
                let value = block.sample_one(&mut probe_rng)?;
                pre.push(BlockPreEstimate {
                    sigma: sigma_i,
                    sketch0: value,
                    blev,
                    rate,
                });
                partials.push((value, rows));
                continue;
            }

            // Local sketch pilot at relaxed precision (paper: "a pilot
            // sample set is drawn in each block to calculate sketch0 and
            // σ to generate different data boundaries").
            let pilot = required_sample_size(sigma_i, relaxed_e, cfg.confidence).min(rows);
            let mut local = WelfordMoments::new();
            sample_from_block(block.as_ref(), pilot, rng, &mut |v| local.update(v))?;
            let sketch0 = local.mean().ok_or_else(|| {
                IslaError::InsufficientData("per-block pilot drew no samples".to_string())
            })?;
            pre.push(BlockPreEstimate {
                sigma: sigma_i,
                sketch0,
                blev,
                rate,
            });

            let sample_size = (rate * rows as f64).round() as u64;
            let shift = compute_shift(cfg.shift_policy, sketch0, sigma_i, cfg.p2);
            let boundaries = DataBoundaries::new(sketch0 + shift, sigma_i, cfg.p1, cfg.p2);
            let mut block_rng = crate::engine::seed::seeded_rng(rng.next_u64());
            let outcome = execute_block(
                block.as_ref(),
                block_id,
                sample_size,
                boundaries,
                sketch0 + shift,
                shift,
                cfg,
                &mut block_rng,
            )?;
            total_samples += outcome.samples_drawn;
            partials.push((outcome.answer, rows));
            blocks.push(outcome);
        }

        let estimate = combine_partials(&partials)?;
        Ok(NonIidResult {
            estimate,
            data_size,
            pre,
            blocks,
            total_samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isla_datagen::synthetic::noniid_dataset;
    use isla_storage::MemBlock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn aggregator(e: f64) -> NonIidAggregator {
        NonIidAggregator::new(IslaConfig::builder().precision(e).build().unwrap()).unwrap()
    }

    #[test]
    fn recovers_truth_on_paper_noniid_workload() {
        // Paper §VIII-D: five blocks N(100,20²), N(50,10²), N(80,30²),
        // N(150,60²), N(120,40²), equal sizes, truth 100, e = 0.5.
        let ds = noniid_dataset(1_000_000, 60);
        let mut rng = StdRng::seed_from_u64(1);
        let result = aggregator(0.5).aggregate(&ds.blocks, &mut rng).unwrap();
        assert!(
            (result.estimate - 100.0).abs() < 0.5,
            "estimate {}",
            result.estimate
        );
        assert_eq!(result.pre.len(), 5);
        assert_eq!(result.blocks.len(), 5);
    }

    #[test]
    fn block_leverages_sum_to_one_and_favor_variance() {
        let ds = noniid_dataset(500_000, 61);
        let mut rng = StdRng::seed_from_u64(2);
        let result = aggregator(0.5).aggregate(&ds.blocks, &mut rng).unwrap();
        let blev_sum: f64 = result.pre.iter().map(|p| p.blev).sum();
        assert!((blev_sum - 1.0).abs() < 1e-9, "Σblev = {blev_sum}");
        // Block 3 (σ=60) must out-lever block 1 (σ=10).
        assert!(result.pre[3].blev > result.pre[1].blev * 5.0);
        // And therefore receive a higher sampling rate (equal sizes).
        assert!(result.pre[3].rate > result.pre[1].rate * 5.0);
    }

    #[test]
    fn per_block_sketches_track_local_means() {
        let ds = noniid_dataset(200_000, 62);
        let mut rng = StdRng::seed_from_u64(3);
        let result = aggregator(1.0).aggregate(&ds.blocks, &mut rng).unwrap();
        let truths = [100.0, 50.0, 80.0, 150.0, 120.0];
        for (p, &truth) in result.pre.iter().zip(&truths) {
            assert!(
                (p.sketch0 - truth).abs() < 6.0,
                "sketch0 {} for block with mean {truth}",
                p.sketch0
            );
        }
    }

    #[test]
    fn handles_constant_blocks_exactly() {
        let blocks = BlockSet::new(vec![
            Arc::new(MemBlock::new(vec![50.0; 10_000])) as Arc<dyn isla_storage::DataBlock>,
            Arc::new(MemBlock::new(isla_datagen::normal_values(
                150.0, 10.0, 10_000, 63,
            ))),
        ]);
        let mut rng = StdRng::seed_from_u64(4);
        let result = aggregator(0.5).aggregate(&blocks, &mut rng).unwrap();
        // Truth ≈ (50 + 150)/2 = 100.
        assert!(
            (result.estimate - 100.0).abs() < 1.0,
            "estimate {}",
            result.estimate
        );
        assert_eq!(result.pre[0].sigma, 0.0);
        assert_eq!(result.pre[0].sketch0, 50.0);
        assert_eq!(result.blocks.len(), 1, "only the varying block iterates");
    }

    #[test]
    fn all_constant_data_short_circuits() {
        let blocks = BlockSet::from_values(vec![9.0; 1_000], 4);
        let mut rng = StdRng::seed_from_u64(5);
        let result = aggregator(0.5).aggregate(&blocks, &mut rng).unwrap();
        assert_eq!(result.estimate, 9.0);
        assert!(result.blocks.is_empty());
    }

    #[test]
    fn empty_data_is_rejected() {
        let blocks = BlockSet::single(MemBlock::new(vec![]));
        let mut rng = StdRng::seed_from_u64(6);
        assert!(matches!(
            aggregator(0.5).aggregate(&blocks, &mut rng),
            Err(IslaError::InsufficientData(_))
        ));
    }
}
