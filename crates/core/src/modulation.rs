//! The iterative modulation scheme (paper Section V-D and Algorithm 2).
//!
//! The objective `D = μ̂ − sketch` is driven to zero geometrically: each
//! iteration shrinks it to `η·D` by solving, for the signed steps
//! `kδα` (movement of the l-estimator) and `δsketch`,
//!
//! ```text
//! kδα − δsketch = (η − 1)·D          (the shrink requirement)
//! min(|kδα|, |δsketch|) = λ·max(…)   (the step-length factor)
//! ```
//!
//! with the direction pattern fixed by the modulation case:
//!
//! * **chase** (Cases 1/4, estimators on the same side of `µ`): both move
//!   in the same direction, the l-estimator faster
//!   (`δsketch = λ·kδα`);
//! * **converge** (Cases 2/3, `µ` between the estimators): they move
//!   toward each other, the l-estimator slower (`|kδα| = λ·|δsketch|`).
//!
//! Because `D` shrinks geometrically, the loop terminates after
//! `⌈log(|D₀|/thr) / log(1/η)⌉` iterations (paper's upper bound), with a
//! configurable hard cap as a safety net.

use crate::config::{IslaConfig, ModulationStyle};
use crate::deviation::ModulationCase;
use crate::estimator::LinearEstimator;

/// One recorded iteration (diagnostics; enabled by
/// [`IslaConfig::record_trace`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStep {
    /// Objective value before the step.
    pub d: f64,
    /// Signed movement of the l-estimator, `k·δα`.
    pub k_delta_alpha: f64,
    /// Signed movement of the sketch estimator.
    pub delta_sketch: f64,
    /// Leverage degree after the step.
    pub alpha: f64,
    /// Sketch value after the step.
    pub sketch: f64,
}

/// The result of running the modulation loop for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct ModulationOutcome {
    /// The block's aggregation answer `k·α + c` (or `sketch0` for
    /// Case 5), before any interval clamping.
    pub answer: f64,
    /// Final leverage degree `α`.
    pub alpha: f64,
    /// Final sketch value.
    pub sketch: f64,
    /// Iterations executed.
    pub iterations: u32,
    /// The case that drove the strategy.
    pub case: ModulationCase,
    /// True when the loop exited because `|D| ≤ thr` (false only when the
    /// safety cap fired).
    pub converged: bool,
    /// Per-iteration trace when requested.
    pub trace: Option<Vec<IterationStep>>,
}

/// Closed-form upper bound on the number of iterations,
/// `⌈log(|D₀|/thr) / log(1/η)⌉` (paper Section VI-B).
pub fn iteration_bound(d0: f64, threshold: f64, eta: f64) -> u32 {
    if d0.abs() <= threshold {
        return 0;
    }
    ((d0.abs() / threshold).ln() / (1.0 / eta).ln()).ceil() as u32
}

/// Signed steps `(kδα, δsketch)` for the current objective value `d`.
fn step_lengths(
    d: f64,
    case: ModulationCase,
    degenerate_k: bool,
    config: &IslaConfig,
) -> (f64, f64) {
    let shrink = (1.0 - config.eta) * d; // total required |ΔD|, signed
    if degenerate_k {
        // The l-estimator cannot move; the sketch does all the closing:
        // D_new = D − δsketch = ηD ⇒ δsketch = (1−η)D.
        return (0.0, shrink);
    }
    let lambda = config.lambda;
    match case {
        ModulationCase::Balanced => (0.0, 0.0),
        ModulationCase::ChaseUp | ModulationCase::ChaseDown => {
            // Same direction, l-estimator faster: δsketch = λ·kδα,
            // kδα(1−λ) = (η−1)D.
            let k_da = -shrink / (1.0 - lambda);
            (k_da, lambda * k_da)
        }
        ModulationCase::ConvergeUp if config.modulation_style == ModulationStyle::PaperLiteral => {
            // §V-C prose: both increase, sketch faster (kδα = λ·δsketch):
            // δs(λ−1) = (η−1)D ⇒ δs = (1−η)D/(1−λ) > 0 for D > 0.
            let ds = shrink / (1.0 - lambda);
            (lambda * ds, ds)
        }
        ModulationCase::ConvergeDown | ModulationCase::ConvergeUp => {
            // Toward each other: kδα = −λ·(1−η)·D/(1+λ),
            // δsketch = +(1−η)·D/(1+λ).
            let ds = shrink / (1.0 + lambda);
            (-lambda * ds, ds)
        }
    }
}

/// Runs Algorithm 2's iteration phase.
///
/// `sketch0` is the block's initial sketch value; `estimator` carries the
/// Theorem-3 coefficients. The case must come from
/// [`crate::deviation::assess`] on the same inputs.
pub fn iterate(
    estimator: &LinearEstimator,
    sketch0: f64,
    case: ModulationCase,
    config: &IslaConfig,
) -> ModulationOutcome {
    let mut trace = config.record_trace.then(Vec::new);
    if case == ModulationCase::Balanced {
        // Case 5: sketch0 is already a proper answer.
        return ModulationOutcome {
            answer: sketch0,
            alpha: 0.0,
            sketch: sketch0,
            iterations: 0,
            case,
            converged: true,
            trace,
        };
    }

    let degenerate = estimator.is_degenerate();
    let mut alpha = 0.0_f64;
    let mut sketch = sketch0;
    let mut d = estimator.c - sketch0; // D₀ (α starts at 0 so μ̂ = c)
    let mut iterations = 0;
    while d.abs() > config.threshold && iterations < config.max_iterations {
        let (k_da, ds) = step_lengths(d, case, degenerate, config);
        if !degenerate {
            alpha += k_da / estimator.k;
        }
        sketch += ds;
        if let Some(t) = trace.as_mut() {
            t.push(IterationStep {
                d,
                k_delta_alpha: k_da,
                delta_sketch: ds,
                alpha,
                sketch,
            });
        }
        d *= config.eta;
        iterations += 1;
    }

    ModulationOutcome {
        answer: estimator.evaluate(alpha),
        alpha,
        sketch,
        iterations,
        case,
        converged: d.abs() <= config.threshold,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IslaConfig;

    fn cfg() -> IslaConfig {
        IslaConfig::builder().threshold(1e-9).build().unwrap()
    }

    fn estimator(k: f64, c: f64) -> LinearEstimator {
        LinearEstimator { k, c }
    }

    #[test]
    fn balanced_returns_sketch_unchanged() {
        let out = iterate(
            &estimator(1.0, 105.0),
            100.0,
            ModulationCase::Balanced,
            &cfg(),
        );
        assert_eq!(out.answer, 100.0);
        assert_eq!(out.alpha, 0.0);
        assert_eq!(out.iterations, 0);
        assert!(out.converged);
    }

    /// Converge cases meet at `c − λ·D₀/(1+λ)`: the l-estimator keeps
    /// `1/(1+λ)` of its initial gap advantage.
    #[test]
    fn converge_meeting_point_closed_form() {
        let config = cfg();
        let lam = config.lambda;
        // Case 2: c < sketch0 (D₀ < 0) with u > v.
        let est = estimator(0.7, 99.0);
        let out = iterate(&est, 100.0, ModulationCase::ConvergeDown, &config);
        let d0 = est.c - 100.0;
        let want = est.c - lam * d0 / (1.0 + lam);
        assert!(
            (out.answer - want).abs() < 1e-6,
            "answer {} want {want}",
            out.answer
        );
        // The meeting point lies strictly between c and sketch0.
        assert!(out.answer > est.c && out.answer < 100.0);
        // Case 3 mirrors it.
        let est3 = estimator(0.7, 101.0);
        let out3 = iterate(&est3, 100.0, ModulationCase::ConvergeUp, &config);
        let want3 = est3.c - lam * (est3.c - 100.0) / (1.0 + lam);
        assert!((out3.answer - want3).abs() < 1e-6);
        assert!(out3.answer < est3.c && out3.answer > 100.0);
    }

    /// Chase cases extrapolate to `c − D₀/(1−λ)`, past the sketch, in the
    /// direction of the presumed `µ`.
    #[test]
    fn chase_meeting_point_closed_form() {
        let config = cfg();
        let lam = config.lambda;
        // Case 1: c < sketch0 < µ; both increase past sketch0.
        let est = estimator(0.5, 99.5);
        let out = iterate(&est, 100.0, ModulationCase::ChaseUp, &config);
        let d0 = est.c - 100.0;
        let want = est.c - d0 / (1.0 - lam);
        assert!((out.answer - want).abs() < 1e-6);
        assert!(out.answer > 100.0, "chase must pass the sketch");
        // Case 4: c > sketch0 > µ; α ends negative.
        let est4 = estimator(0.5, 100.5);
        let out4 = iterate(&est4, 100.0, ModulationCase::ChaseDown, &config);
        assert!(out4.answer < 100.0);
        assert!(out4.alpha < 0.0, "case 4 balances with a negative α");
    }

    #[test]
    fn paper_literal_case3_extrapolates_upward() {
        let config = IslaConfig::builder()
            .threshold(1e-9)
            .modulation_style(ModulationStyle::PaperLiteral)
            .build()
            .unwrap();
        let est = estimator(0.7, 101.0);
        let out = iterate(&est, 100.0, ModulationCase::ConvergeUp, &config);
        let d0 = est.c - 100.0;
        let want = est.c + config.lambda * d0 / (1.0 - config.lambda);
        assert!(
            (out.answer - want).abs() < 1e-6,
            "answer {} want {want}",
            out.answer
        );
        assert!(out.answer > est.c, "paper-literal case 3 moves past c");
    }

    #[test]
    fn sketch_and_estimator_meet_at_termination() {
        let config = cfg();
        for (case, c) in [
            (ModulationCase::ConvergeDown, 99.0),
            (ModulationCase::ConvergeUp, 101.0),
            (ModulationCase::ChaseUp, 99.0),
            (ModulationCase::ChaseDown, 101.0),
        ] {
            let est = estimator(0.9, c);
            let out = iterate(&est, 100.0, case, &config);
            assert!(out.converged, "{case:?}");
            assert!(
                (out.answer - out.sketch).abs() <= 2.0 * config.threshold + 1e-9,
                "{case:?}: answer {} sketch {}",
                out.answer,
                out.sketch
            );
        }
    }

    #[test]
    fn iteration_count_matches_closed_form_bound() {
        let config = cfg();
        let est = estimator(1.0, 101.0);
        let out = iterate(&est, 100.0, ModulationCase::ConvergeUp, &config);
        let bound = iteration_bound(est.c - 100.0, config.threshold, config.eta);
        assert_eq!(out.iterations, bound, "η=0.5 halves D exactly per step");
        assert_eq!(bound, 30, "log2(1.0/1e-9) = 29.9 → 30");
    }

    #[test]
    fn below_threshold_needs_no_iteration() {
        let config = cfg();
        let est = estimator(1.0, 100.0 + 1e-12);
        let out = iterate(&est, 100.0, ModulationCase::ConvergeUp, &config);
        assert_eq!(out.iterations, 0);
        assert!(out.converged);
        assert!((out.answer - est.c).abs() < 1e-12);
        assert_eq!(iteration_bound(1e-12, config.threshold, config.eta), 0);
    }

    #[test]
    fn safety_cap_fires_and_is_reported() {
        let config = IslaConfig::builder()
            .threshold(1e-300)
            .max_iterations(8)
            .build()
            .unwrap();
        let out = iterate(
            &estimator(1.0, 101.0),
            100.0,
            ModulationCase::ConvergeUp,
            &config,
        );
        assert_eq!(out.iterations, 8);
        assert!(!out.converged);
    }

    #[test]
    fn degenerate_k_moves_only_the_sketch() {
        let config = cfg();
        let est = estimator(0.0, 101.0);
        let out = iterate(&est, 100.0, ModulationCase::ConvergeUp, &config);
        assert_eq!(out.alpha, 0.0);
        assert_eq!(out.answer, est.c, "answer stays at c when α cannot act");
        assert!((out.sketch - est.c).abs() < 1e-6, "sketch walks to c");
        assert!(out.converged);
    }

    #[test]
    fn trace_records_every_iteration() {
        let config = IslaConfig::builder()
            .threshold(1e-3)
            .record_trace(true)
            .build()
            .unwrap();
        let est = estimator(1.0, 101.0);
        let out = iterate(&est, 100.0, ModulationCase::ConvergeUp, &config);
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.len(), out.iterations as usize);
        // d halves every step.
        for w in trace.windows(2) {
            assert!((w[1].d - w[0].d * config.eta).abs() < 1e-12);
        }
        // Converge-up: sketch strictly increases, α strictly decreases.
        for w in trace.windows(2) {
            assert!(w[1].sketch > w[0].sketch);
            assert!(w[1].alpha < w[0].alpha);
        }
    }

    /// The answer is invariant to the magnitude of k: α rescales inversely
    /// so k·α (the movement) is identical. This is the reparametrization
    /// property discussed in DESIGN.md.
    #[test]
    fn answer_invariant_to_k_magnitude() {
        let config = cfg();
        let a = iterate(
            &estimator(0.1, 101.0),
            100.0,
            ModulationCase::ConvergeUp,
            &config,
        );
        let b = iterate(
            &estimator(10.0, 101.0),
            100.0,
            ModulationCase::ConvergeUp,
            &config,
        );
        assert!((a.answer - b.answer).abs() < 1e-9);
        assert!((a.alpha - b.alpha * 100.0).abs() < 1e-9, "α scales as 1/k");
    }
}
